// Package sim is the runtime substrate: a discrete-event simulator of a
// preemptive uniprocessor scheduled by EDF-VD, implementing the paper's
// system operational model (Section III). The system starts in LO mode;
// when a high-criticality job exceeds its optimistic budget C^LO the
// system switches to HI mode, low-criticality tasks are dropped (Baruah
// [1]) or degraded (Liu [2]), and the system returns to LO mode once no
// ready HC job remains.
//
// The simulator closes the loop on the paper's design-time analysis: given
// an assignment produced by internal/core it measures the *observed*
// overrun and mode-switch rates, LC service and deadline behaviour, which
// the analytical bounds must dominate.
package sim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"chebymc/internal/dist"
	"chebymc/internal/edfvd"
	"chebymc/internal/mc"
)

// Policy selects the HI-mode treatment of LC tasks.
type Policy int

const (
	// DropAll discards all LC jobs in HI mode (Baruah et al. [1]).
	DropAll Policy = iota
	// Degrade keeps LC jobs running with budgets scaled by the degrade
	// factor (Liu et al. [2]).
	Degrade
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case DropAll:
		return "drop-all"
	case Degrade:
		return "degrade"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Config parameterises a simulation run.
type Config struct {
	// Horizon is the simulated time span. Must be positive.
	Horizon float64
	// Policy is the HI-mode LC treatment.
	Policy Policy
	// DegradeFactor is ρ for the Degrade policy (0 < ρ ≤ 1). Ignored by
	// DropAll. Defaults to 0.5, the value in [2].
	DegradeFactor float64
	// Exec maps task ID → execution-time distribution. HC entries are
	// clamped to [0, C^HI]; LC entries to [0, C^LO]. Tasks without an
	// entry execute for exactly C^LO.
	Exec map[int]dist.Dist
	// X is the virtual-deadline factor for HC tasks in LO mode. When 0
	// it is computed from the EDF-VD analysis.
	X float64
	// Seed seeds the simulation's random source.
	Seed int64
	// MaxEvents caps the schedule-event log; 0 disables logging.
	MaxEvents int
	// Jitter maps task ID → an inter-release jitter distribution:
	// successive releases are separated by Period + max(0, draw),
	// modelling sporadic tasks (the paper's periods are minimum
	// separations). Tasks without an entry release strictly
	// periodically.
	Jitter map[int]dist.Dist
}

// Metrics aggregates what happened during a run.
type Metrics struct {
	// Time is the simulated span.
	Time float64
	// HCReleased / LCReleased count released jobs per criticality.
	HCReleased, LCReleased int
	// HCCompleted / LCCompleted count jobs finishing before their
	// deadline.
	HCCompleted, LCCompleted int
	// HCMisses / LCMisses count deadline misses of completed jobs.
	HCMisses, LCMisses int
	// LCDropped counts LC jobs discarded by a mode switch or released
	// into HI mode under DropAll.
	LCDropped int
	// LCDegraded counts LC jobs that ran with a degraded budget.
	LCDegraded int
	// Overruns counts HC jobs whose execution exceeded C^LO.
	Overruns int
	// ModeSwitches counts LO→HI transitions.
	ModeSwitches int
	// TimeInHI is the total time spent in HI mode.
	TimeInHI float64
	// BusyTime is the total time the processor was executing jobs.
	BusyTime float64
}

// Utilisation reports BusyTime / Time.
func (m Metrics) Utilisation() float64 {
	if m.Time == 0 {
		return 0
	}
	return m.BusyTime / m.Time
}

// OverrunRate reports Overruns / HCReleased, the empirical counterpart of
// the per-job Theorem 1 bound (aggregated over tasks).
func (m Metrics) OverrunRate() float64 {
	if m.HCReleased == 0 {
		return 0
	}
	return float64(m.Overruns) / float64(m.HCReleased)
}

// LCServiceRate reports the fraction of released LC jobs that completed.
func (m Metrics) LCServiceRate() float64 {
	if m.LCReleased == 0 {
		return 0
	}
	return float64(m.LCCompleted) / float64(m.LCReleased)
}

type job struct {
	task      *mc.Task
	release   float64
	absDL     float64 // real deadline
	virtDL    float64 // EDF-VD priority deadline (shrunk for HC in LO)
	remaining float64 // execution time still needed
	execTotal float64 // drawn execution time
	consumed  float64 // processor time received
	degraded  bool
	dropped   bool
}

// Simulator runs one task set. Create with New, run with Run.
type Simulator struct {
	ts  *mc.TaskSet
	cfg Config
	// perTask holds the per-task metrics of the most recent Run.
	perTask map[int]*TaskMetrics
	// events holds the schedule-event log of the most recent Run.
	events []Event
}

// New validates the configuration and returns a Simulator.
func New(ts *mc.TaskSet, cfg Config) (*Simulator, error) {
	if ts == nil {
		return nil, errors.New("sim: nil task set")
	}
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("sim: horizon %g must be positive", cfg.Horizon)
	}
	if cfg.Policy != DropAll && cfg.Policy != Degrade {
		return nil, fmt.Errorf("sim: unknown policy %d", int(cfg.Policy))
	}
	if cfg.DegradeFactor == 0 {
		cfg.DegradeFactor = 0.5
	}
	if cfg.DegradeFactor < 0 || cfg.DegradeFactor > 1 {
		return nil, fmt.Errorf("sim: degrade factor %g out of (0, 1]", cfg.DegradeFactor)
	}
	if cfg.X == 0 {
		cfg.X = edfvd.Schedulable(ts).X
	}
	if cfg.X <= 0 || cfg.X > 1 {
		return nil, fmt.Errorf("sim: virtual-deadline factor %g out of (0, 1]", cfg.X)
	}
	return &Simulator{ts: ts, cfg: cfg}, nil
}

// Run simulates the configured horizon and returns the metrics.
func (s *Simulator) Run() Metrics {
	r := rand.New(rand.NewSource(s.cfg.Seed))
	var m Metrics
	m.Time = s.cfg.Horizon

	s.perTask = make(map[int]*TaskMetrics, len(s.ts.Tasks))
	for _, t := range s.ts.Tasks {
		s.perTask[t.ID] = &TaskMetrics{ID: t.ID, Crit: t.Crit}
	}
	s.events = nil

	tasks := s.ts.Tasks
	nextRelease := make([]float64, len(tasks))
	mode := mc.LO
	var ready []*job
	now := 0.0
	lastHIEnter := 0.0

	drawExec := func(t *mc.Task) float64 {
		d, ok := s.cfg.Exec[t.ID]
		if !ok {
			return t.CLO
		}
		x := d.Sample(r)
		if x < 0 {
			x = 0
		}
		cap := t.CHI
		if t.Crit == mc.LC {
			cap = t.CLO
		}
		if x > cap {
			x = cap
		}
		return x
	}

	release := func(i int, at float64) {
		t := &tasks[i]
		gap := t.Period
		if jd, ok := s.cfg.Jitter[t.ID]; ok {
			if j := jd.Sample(r); j > 0 {
				gap += j
			}
		}
		nextRelease[i] = at + gap
		j := &job{
			task:      t,
			release:   at,
			absDL:     at + t.Period,
			virtDL:    at + t.Period,
			execTotal: drawExec(t),
		}
		j.remaining = j.execTotal
		tm := s.perTask[t.ID]
		tm.Released++
		s.record(at, EvRelease, t.ID)
		if t.Crit == mc.HC {
			m.HCReleased++
			if j.execTotal > t.CLO {
				m.Overruns++
				tm.Overruns++
			}
			if mode == mc.LO {
				j.virtDL = at + s.cfg.X*t.Period
			}
		} else {
			m.LCReleased++
			if mode == mc.HI {
				switch s.cfg.Policy {
				case DropAll:
					j.dropped = true
					m.LCDropped++
					tm.Dropped++
					s.record(at, EvDrop, t.ID)
					return
				case Degrade:
					j.degraded = true
					m.LCDegraded++
					j.remaining *= s.cfg.DegradeFactor
				}
			}
		}
		ready = append(ready, j)
	}

	// pick returns the ready job with the earliest virtual deadline,
	// ties broken by task ID for determinism.
	pick := func() *job {
		var best *job
		for _, j := range ready {
			if best == nil ||
				j.virtDL < best.virtDL ||
				(j.virtDL == best.virtDL && j.task.ID < best.task.ID) {
				best = j
			}
		}
		return best
	}

	removeJob := func(target *job) {
		for i, j := range ready {
			if j == target {
				ready[i] = ready[len(ready)-1]
				ready = ready[:len(ready)-1]
				return
			}
		}
	}

	hasReadyHC := func() bool {
		for _, j := range ready {
			if j.task.Crit == mc.HC {
				return true
			}
		}
		return false
	}

	enterHI := func() {
		mode = mc.HI
		m.ModeSwitches++
		lastHIEnter = now
		s.record(now, EvSwitchHI, 0)
		// Restore real deadlines for HC jobs; handle LC jobs per policy.
		var kept []*job
		for _, j := range ready {
			if j.task.Crit == mc.HC {
				j.virtDL = j.absDL
				kept = append(kept, j)
				continue
			}
			switch s.cfg.Policy {
			case DropAll:
				j.dropped = true
				m.LCDropped++
				s.perTask[j.task.ID].Dropped++
				s.record(now, EvDrop, j.task.ID)
			case Degrade:
				if !j.degraded {
					j.degraded = true
					m.LCDegraded++
					j.remaining *= s.cfg.DegradeFactor
				}
				kept = append(kept, j)
			}
		}
		ready = kept
	}

	exitHI := func() {
		mode = mc.LO
		m.TimeInHI += now - lastHIEnter
		s.record(now, EvSwitchLO, 0)
		// Future HC releases get virtual deadlines again; pending HC jobs
		// keep their real deadlines (they were admitted under HI).
	}

	for i := range tasks {
		nextRelease[i] = 0
	}

	for now < s.cfg.Horizon {
		// Release everything due now.
		for i := range tasks {
			for nextRelease[i] <= now && nextRelease[i] < s.cfg.Horizon {
				release(i, nextRelease[i])
			}
		}

		run := pick()

		// Next release strictly in the future.
		nextRel := math.Inf(1)
		for i := range tasks {
			if nextRelease[i] > now && nextRelease[i] < nextRel && nextRelease[i] < s.cfg.Horizon {
				nextRel = nextRelease[i]
			}
		}

		if run == nil {
			if math.IsInf(nextRel, 1) {
				break
			}
			now = nextRel
			continue
		}

		// Milestone: completion, or — for an HC job in LO mode — the C^LO
		// budget exhaustion that triggers the mode switch.
		milestone := run.remaining
		budgetSwitch := false
		if mode == mc.LO && run.task.Crit == mc.HC {
			budgetLeft := run.task.CLO - run.consumed
			if budgetLeft < milestone {
				milestone = budgetLeft
				budgetSwitch = true
			}
		}
		end := now + milestone
		if end > nextRel {
			// Preemption point: run until the release, then loop.
			delta := nextRel - now
			run.remaining -= delta
			run.consumed += delta
			m.BusyTime += delta
			now = nextRel
			continue
		}
		if end > s.cfg.Horizon {
			delta := s.cfg.Horizon - now
			run.remaining -= delta
			run.consumed += delta
			m.BusyTime += delta
			now = s.cfg.Horizon
			break
		}

		run.remaining -= milestone
		run.consumed += milestone
		m.BusyTime += milestone
		now = end

		if budgetSwitch && run.remaining > 0 {
			enterHI()
			continue
		}
		if run.remaining <= 1e-12 {
			removeJob(run)
			tm := s.perTask[run.task.ID]
			tm.Completed++
			resp := now - run.release
			tm.sumResponse += resp
			if resp > tm.MaxResponse {
				tm.MaxResponse = resp
			}
			missed := now > run.absDL+1e-9
			if missed {
				tm.Misses++
				s.record(now, EvMiss, run.task.ID)
			} else {
				s.record(now, EvComplete, run.task.ID)
			}
			if run.task.Crit == mc.HC {
				m.HCCompleted++
				if missed {
					m.HCMisses++
				}
			} else {
				m.LCCompleted++
				if missed {
					m.LCMisses++
				}
			}
			if mode == mc.HI && !hasReadyHC() {
				exitHI()
			}
		}
	}
	if mode == mc.HI {
		m.TimeInHI += s.cfg.Horizon - lastHIEnter
	}
	return m
}
