package sim

import (
	"context"
	"fmt"

	"chebymc/internal/mc"
	"chebymc/internal/par"
	"chebymc/internal/rng"
)

// Replicate is ReplicateCtx with context.Background() — a convenience
// for callers with no cancellation story (tests, one-shot tools). New
// code that runs under a driver or sweep should call ReplicateCtx.
func Replicate(ts *mc.TaskSet, cfg Config, runs, workers int) ([]Metrics, error) {
	return ReplicateCtx(context.Background(), ts, cfg, runs, workers)
}

// ReplicateCtx runs the Monte Carlo replication loop: the same task set
// and configuration simulated runs times, each with a seed derived from
// cfg.Seed and the run index. Replications execute on up to workers
// goroutines — each run builds its own Simulator, and the task set is
// only read — and the returned metrics are in run order, identical for
// every worker count. Cancelling ctx stops dispatching runs and returns
// an error once in-flight simulations drain.
func ReplicateCtx(ctx context.Context, ts *mc.TaskSet, cfg Config, runs, workers int) ([]Metrics, error) {
	if runs < 1 {
		return nil, fmt.Errorf("sim: need runs ≥ 1, got %d", runs)
	}
	// Resolve the virtual-deadline factor once so every replication uses
	// the same analysis (and the EDF-VD computation is not repeated).
	probe, err := New(ts, cfg)
	if err != nil {
		return nil, err
	}
	base := probe.cfg
	return par.MapCtx(ctx, workers, runs, func(i int) (Metrics, error) {
		c := base
		c.Seed = rng.Derive(cfg.Seed, int64(i))
		s, err := New(ts, c)
		if err != nil {
			return Metrics{}, err
		}
		return s.Run(), nil
	})
}

// SummarizeReplications aggregates replicated metrics into per-field
// means — the form the experiment harnesses consume.
type ReplicationSummary struct {
	// Runs is the replication count.
	Runs int
	// MeanOverrunRate, MeanLCServiceRate, MeanUtilisation average the
	// per-run rates.
	MeanOverrunRate, MeanLCServiceRate, MeanUtilisation float64
	// MeanModeSwitches averages the LO→HI transition counts.
	MeanModeSwitches float64
	// TotalHCMisses sums HC deadline misses across all runs.
	TotalHCMisses int
}

// Summarize reduces replicated metrics to their means.
func Summarize(ms []Metrics) ReplicationSummary {
	sum := ReplicationSummary{Runs: len(ms)}
	if len(ms) == 0 {
		return sum
	}
	for _, m := range ms {
		sum.MeanOverrunRate += m.OverrunRate()
		sum.MeanLCServiceRate += m.LCServiceRate()
		sum.MeanUtilisation += m.Utilisation()
		sum.MeanModeSwitches += float64(m.ModeSwitches)
		sum.TotalHCMisses += m.HCMisses
	}
	n := float64(len(ms))
	sum.MeanOverrunRate /= n
	sum.MeanLCServiceRate /= n
	sum.MeanUtilisation /= n
	sum.MeanModeSwitches /= n
	return sum
}
