package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"chebymc/internal/core"
	"chebymc/internal/dist"
	"chebymc/internal/edfvd"
	"chebymc/internal/mc"
	"chebymc/internal/policy"
	"chebymc/internal/stats"
	"chebymc/internal/taskgen"
)

// mkSet builds a schedulable dual-criticality set: one HC task with a wide
// ACET/WCET gap and one LC task.
func mkSet(t *testing.T) *mc.TaskSet {
	t.Helper()
	ts, err := mc.NewTaskSet([]mc.Task{
		{ID: 1, Name: "ctl", Crit: mc.HC, CLO: 20, CHI: 60, Period: 100,
			Profile: mc.Profile{ACET: 15, Sigma: 2.5}},
		{ID: 2, Name: "log", Crit: mc.LC, CLO: 10, CHI: 10, Period: 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

func TestNewValidation(t *testing.T) {
	ts := mkSet(t)
	if _, err := New(nil, Config{Horizon: 10}); err == nil {
		t.Error("nil task set must error")
	}
	if _, err := New(ts, Config{Horizon: 0}); err == nil {
		t.Error("zero horizon must error")
	}
	if _, err := New(ts, Config{Horizon: 10, Policy: Policy(9)}); err == nil {
		t.Error("unknown policy must error")
	}
	if _, err := New(ts, Config{Horizon: 10, DegradeFactor: 2}); err == nil {
		t.Error("degrade factor > 1 must error")
	}
	if _, err := New(ts, Config{Horizon: 10, X: 1.5}); err == nil {
		t.Error("x > 1 must error")
	}
	if _, err := New(ts, Config{Horizon: 10}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestPolicyString(t *testing.T) {
	if DropAll.String() != "drop-all" || Degrade.String() != "degrade" {
		t.Error("policy strings wrong")
	}
	if Policy(7).String() == "" {
		t.Error("unknown policy must still render")
	}
}

func TestDeterministicNoOverrunNoSwitch(t *testing.T) {
	ts := mkSet(t)
	// Execution always exactly C^LO: never a switch, never a miss.
	s, err := New(ts, Config{Horizon: 10000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m := s.Run()
	if m.ModeSwitches != 0 {
		t.Errorf("mode switches = %d, want 0", m.ModeSwitches)
	}
	if m.Overruns != 0 {
		t.Errorf("overruns = %d, want 0", m.Overruns)
	}
	if m.HCMisses != 0 || m.LCMisses != 0 {
		t.Errorf("misses = %d/%d, want 0/0", m.HCMisses, m.LCMisses)
	}
	if m.HCReleased != 100 {
		t.Errorf("HC released = %d, want 100", m.HCReleased)
	}
	if m.LCReleased != 200 {
		t.Errorf("LC released = %d, want 200", m.LCReleased)
	}
	if m.HCCompleted != m.HCReleased {
		t.Errorf("HC completed %d of %d", m.HCCompleted, m.HCReleased)
	}
	// Busy time: 100 jobs × 20 + 200 × 10 = 4000 over 10000.
	if math.Abs(m.Utilisation()-0.4) > 1e-9 {
		t.Errorf("utilisation = %g, want 0.4", m.Utilisation())
	}
	if m.TimeInHI != 0 {
		t.Errorf("time in HI = %g, want 0", m.TimeInHI)
	}
}

// overrunConfig gives the HC task a truncated-normal execution time whose
// tail exceeds C^LO, so mode switches happen.
func overrunConfig(t *testing.T, ts *mc.TaskSet, pol Policy) Config {
	t.Helper()
	d, err := dist.NewTruncNormal(15, 2.5, 0, 60)
	if err != nil {
		t.Fatal(err)
	}
	lc, err := dist.NewTruncNormal(8, 1, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Horizon: 200000,
		Policy:  pol,
		Exec:    map[int]dist.Dist{1: d, 2: lc},
		Seed:    7,
	}
}

func TestOverrunsTriggerSwitchesAndRecovery(t *testing.T) {
	ts := mkSet(t)
	s, err := New(ts, overrunConfig(t, ts, DropAll))
	if err != nil {
		t.Fatal(err)
	}
	m := s.Run()
	if m.Overruns == 0 {
		t.Fatal("expected overruns with a tailed distribution")
	}
	if m.ModeSwitches == 0 {
		t.Fatal("expected mode switches")
	}
	// Every overrun triggers at most one switch and the system recovers:
	// time in HI must be a small fraction of the horizon.
	if m.ModeSwitches > m.Overruns {
		t.Errorf("switches %d > overruns %d", m.ModeSwitches, m.Overruns)
	}
	if m.TimeInHI >= m.Time/2 {
		t.Errorf("system stuck in HI: %g of %g", m.TimeInHI, m.Time)
	}
	// HC deadlines are guaranteed by EDF-VD for this schedulable set.
	if m.HCMisses != 0 {
		t.Errorf("HC misses = %d, want 0", m.HCMisses)
	}
	// Some LC jobs must have been dropped under DropAll.
	if m.LCDropped == 0 {
		t.Error("expected dropped LC jobs under drop-all")
	}
	if m.LCDegraded != 0 {
		t.Error("drop-all must not degrade")
	}
}

func TestDegradePolicyKeepsLCRunning(t *testing.T) {
	ts := mkSet(t)
	s, err := New(ts, overrunConfig(t, ts, Degrade))
	if err != nil {
		t.Fatal(err)
	}
	m := s.Run()
	if m.ModeSwitches == 0 {
		t.Fatal("expected mode switches")
	}
	if m.LCDegraded == 0 {
		t.Error("expected degraded LC jobs under degrade policy")
	}
	if m.LCDropped != 0 {
		t.Error("degrade policy must not drop")
	}
	// Degrade must serve at least as many LC jobs as drop-all.
	s2, err := New(ts, overrunConfig(t, ts, DropAll))
	if err != nil {
		t.Fatal(err)
	}
	m2 := s2.Run()
	if m.LCServiceRate() < m2.LCServiceRate() {
		t.Errorf("degrade LC service %g < drop-all %g", m.LCServiceRate(), m2.LCServiceRate())
	}
}

func TestObservedOverrunRateRespectsChebyshev(t *testing.T) {
	// Assign C^LO = ACET + n·σ via the core API and check the *observed*
	// per-job overrun rate against the Theorem 1 bound.
	base, err := mc.NewTaskSet([]mc.Task{
		{ID: 1, Crit: mc.HC, CLO: 15, CHI: 60, Period: 100,
			Profile: mc.Profile{ACET: 15, Sigma: 2.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := dist.NewTruncNormal(15, 2.5, 0, 60)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []float64{1, 2, 3} {
		a, err := core.ApplyUniform(base, n)
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(a.TaskSet, Config{
			Horizon: 400000,
			Exec:    map[int]dist.Dist{1: d},
			Seed:    11,
		})
		if err != nil {
			t.Fatal(err)
		}
		m := s.Run()
		bound := stats.CantelliBound(n)
		if rate := m.OverrunRate(); rate > bound+0.02 {
			t.Errorf("n=%g: observed overrun rate %g violates bound %g", n, rate, bound)
		}
	}
}

func TestMetricsAccessorsZero(t *testing.T) {
	var m Metrics
	if m.Utilisation() != 0 || m.OverrunRate() != 0 || m.LCServiceRate() != 0 {
		t.Error("zero metrics must report zero rates")
	}
}

func TestBusyTimeBounded(t *testing.T) {
	ts := mkSet(t)
	s, err := New(ts, overrunConfig(t, ts, DropAll))
	if err != nil {
		t.Fatal(err)
	}
	m := s.Run()
	if m.BusyTime > m.Time+1e-9 {
		t.Errorf("busy %g exceeds horizon %g", m.BusyTime, m.Time)
	}
	if m.TimeInHI > m.Time+1e-9 {
		t.Errorf("HI time %g exceeds horizon %g", m.TimeInHI, m.Time)
	}
}

func TestDeterministicRuns(t *testing.T) {
	ts := mkSet(t)
	cfg := overrunConfig(t, ts, DropAll)
	s1, _ := New(ts, cfg)
	s2, _ := New(ts, cfg)
	if s1.Run() != s2.Run() {
		t.Error("same seed must reproduce identical metrics")
	}
}

func TestHCDeadlinesUnderPressure(t *testing.T) {
	// A heavily loaded but Eq. 8-schedulable set: HC deadlines must hold
	// even with constant overruns.
	ts, err := mc.NewTaskSet([]mc.Task{
		{ID: 1, Crit: mc.HC, CLO: 20, CHI: 45, Period: 100,
			Profile: mc.Profile{ACET: 18, Sigma: 2}},
		{ID: 2, Crit: mc.HC, CLO: 30, CHI: 80, Period: 250,
			Profile: mc.Profile{ACET: 26, Sigma: 3}},
		{ID: 3, Crit: mc.LC, CLO: 12, CHI: 12, Period: 60},
	})
	if err != nil {
		t.Fatal(err)
	}
	an := edfvd.Schedulable(ts)
	if !an.Schedulable {
		t.Fatalf("test set must be schedulable: %v", an)
	}
	d1, _ := dist.NewTruncNormal(18, 2, 0, 45)
	d2, _ := dist.NewTruncNormal(26, 3, 0, 80)
	s, err := New(ts, Config{
		Horizon: 300000,
		Exec:    map[int]dist.Dist{1: d1, 2: d2},
		Seed:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := s.Run()
	if m.HCMisses != 0 {
		t.Fatalf("HC deadline misses under schedulable set: %d (switches %d)", m.HCMisses, m.ModeSwitches)
	}
	if m.ModeSwitches == 0 {
		t.Error("expected switches in this scenario")
	}
}

func TestLCJobsClampedToBudget(t *testing.T) {
	// LC execution distributions are clamped to C^LO: an LC dist far
	// above budget must not inflate busy time beyond the schedulable
	// envelope or cause HC misses.
	ts := mkSet(t)
	big, _ := dist.NewNormal(40, 5) // LC budget is 10
	s, err := New(ts, Config{
		Horizon: 50000,
		Exec:    map[int]dist.Dist{2: big},
		Seed:    5,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := s.Run()
	if m.HCMisses != 0 {
		t.Errorf("HC misses = %d, want 0", m.HCMisses)
	}
	// All LC jobs take exactly 10 (clamped), LO utilisation 0.4.
	if math.Abs(m.Utilisation()-0.4) > 0.02 {
		t.Errorf("utilisation = %g, want ≈0.4", m.Utilisation())
	}
}

func TestSporadicJitterSlowsReleases(t *testing.T) {
	ts := mkSet(t)
	jit, err := dist.NewUniform(0, 50)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(ts, Config{
		Horizon: 100000,
		Seed:    1,
		Jitter:  map[int]dist.Dist{1: jit},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := s.Run()
	// Mean separation grows from 100 to ≈125: releases drop accordingly.
	if m.HCReleased >= 1000 || m.HCReleased < 700 {
		t.Errorf("HC released = %d, want ≈ 800 with jitter", m.HCReleased)
	}
	// The un-jittered LC task stays strictly periodic.
	if m.LCReleased != 2000 {
		t.Errorf("LC released = %d, want 2000", m.LCReleased)
	}
	// Sporadic slack only helps: no misses.
	if m.HCMisses != 0 || m.LCMisses != 0 {
		t.Errorf("misses with jitter: %d/%d", m.HCMisses, m.LCMisses)
	}
}

func TestNegativeJitterClamped(t *testing.T) {
	// A distribution straddling zero must never shrink the separation
	// below the period (the sporadic minimum).
	ts := mkSet(t)
	jit, err := dist.NewNormal(0, 30)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(ts, Config{
		Horizon: 50000,
		Seed:    2,
		Jitter:  map[int]dist.Dist{1: jit},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := s.Run()
	// With negative draws clamped, separations ≥ 100 → at most 500
	// releases over 50000.
	if m.HCReleased > 500 {
		t.Errorf("HC released = %d, exceeds the periodic maximum", m.HCReleased)
	}
}

// The central safety property across random systems: any Eq. 8-schedulable
// assignment, replayed with adversarially tailed execution times, never
// misses a high-criticality deadline.
func TestNoHCMissOnRandomSchedulableSets(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ts, err := taskgen.Mixed(r, taskgen.Config{}, 0.9)
		if err != nil {
			return false
		}
		a, err := policy.ChebyshevUniform{N: 2}.Assign(ts, nil)
		if err != nil {
			return false
		}
		if !edfvd.Schedulable(a.TaskSet).Schedulable {
			return true // unschedulable draws carry no guarantee
		}
		hasHC := false
		for _, task := range a.TaskSet.Tasks {
			if task.Crit == mc.HC {
				hasHC = true
				break
			}
		}
		if !hasHC {
			return true // all-LC draws are vacuous (and EDF-VD's X is undefined)
		}
		exec := map[int]dist.Dist{}
		for _, task := range a.TaskSet.Tasks {
			if task.Crit != mc.HC || task.Profile.Sigma <= 0 {
				continue
			}
			// Heavy-tailed execution times: constant overruns.
			d, derr := dist.LogNormalFromMoments(task.Profile.ACET, 2*task.Profile.Sigma)
			if derr != nil {
				return false
			}
			exec[task.ID] = dist.ClampedAbove{D: d, Max: task.CHI}
		}
		s, err := New(a.TaskSet, Config{Horizon: 30000, Exec: exec, Seed: seed})
		if err != nil {
			return false
		}
		m := s.Run()
		return m.HCMisses == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
