package sim

// Indexed priority queues for the event loop. Two orderings drive the
// simulator: which ready job runs next (EDF-VD: earliest virtual
// deadline) and which task releases next. Both were linear scans in the
// seed implementation; here they are binary min-heaps, making the
// per-event cost O(log n).
//
// Determinism contract: the heap comparators implement exactly the
// seed's tie-breaks — ready jobs order by (virtDL, task ID), pending
// releases by (time, task index) — and both orders are total on every
// reachable simulator state (two ready jobs of one task can never share
// a virtual deadline because successive releases are ≥ one period
// apart, and a task has at most one pending release). A total order
// makes the heap's pop sequence independent of its internal layout, so
// the rewrite cannot reorder events or RNG draws.

// readyHeap is an index-tracked min-heap over the ready jobs. Jobs
// record their slot in job.heapIdx, so removing an arbitrary job (a
// completion is not always the root once mode switches rewrite
// deadlines) is O(log n) instead of a scan.
type readyHeap struct {
	a []*job
}

// jobLess is the EDF-VD priority: earliest virtual deadline first, ties
// broken by task ID — the seed's pick() ordering.
func jobLess(x, y *job) bool {
	if x.virtDL != y.virtDL {
		return x.virtDL < y.virtDL
	}
	return x.task.ID < y.task.ID
}

func (h *readyHeap) len() int { return len(h.a) }

// min returns the highest-priority ready job without removing it, or
// nil when no job is ready.
func (h *readyHeap) min() *job {
	if len(h.a) == 0 {
		return nil
	}
	return h.a[0]
}

func (h *readyHeap) push(j *job) {
	j.heapIdx = len(h.a)
	h.a = append(h.a, j)
	h.up(j.heapIdx)
}

// remove deletes the job at slot i.
func (h *readyHeap) remove(i int) {
	n := len(h.a) - 1
	last := h.a[n]
	h.a[n] = nil
	h.a = h.a[:n]
	if i == n {
		return
	}
	h.a[i] = last
	last.heapIdx = i
	if !h.down(i) {
		h.up(i)
	}
}

// reinit rebuilds the heap from jobs in O(n) — used after a mode switch
// rewrites every HC job's virtual deadline at once, where per-job fixes
// would cost O(n log n).
func (h *readyHeap) reinit(jobs []*job) {
	h.a = append(h.a[:0], jobs...)
	for i, j := range h.a {
		j.heapIdx = i
	}
	for i := len(h.a)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

func (h *readyHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !jobLess(h.a[i], h.a[p]) {
			break
		}
		h.swap(i, p)
		i = p
	}
}

// down sifts slot i toward the leaves and reports whether it moved.
func (h *readyHeap) down(i int) bool {
	i0 := i
	n := len(h.a)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && jobLess(h.a[r], h.a[l]) {
			m = r
		}
		if !jobLess(h.a[m], h.a[i]) {
			break
		}
		h.swap(i, m)
		i = m
	}
	return i > i0
}

func (h *readyHeap) swap(i, j int) {
	h.a[i], h.a[j] = h.a[j], h.a[i]
	h.a[i].heapIdx = i
	h.a[j].heapIdx = j
}

// releaseHeap orders pending releases by (time, dense task index). Each
// task appears at most once: it is popped when its release fires and
// re-pushed with the next release time (releases at or beyond the
// horizon are simply not pushed). The root therefore answers both hot
// questions — "everything due now" (drain while root time ≤ now) and
// "next release strictly in the future" (the root after the drain) —
// that the seed answered with two O(tasks) scans per event.
type releaseHeap struct {
	idx  []int     // heap of dense task indices
	time []float64 // next-release time per dense task index
}

// reset sizes the per-task time table and empties the heap.
func (h *releaseHeap) reset(n int) {
	h.idx = h.idx[:0]
	if cap(h.time) < n {
		h.time = make([]float64, n)
	}
	h.time = h.time[:n]
}

func (h *releaseHeap) len() int { return len(h.idx) }

// minIdx returns the dense task index with the earliest pending
// release; the caller reads the time from h.time. Only valid when
// len() > 0.
func (h *releaseHeap) minIdx() int { return h.idx[0] }

func (h *releaseHeap) lessIdx(a, b int) bool {
	ta, tb := h.time[a], h.time[b]
	if ta != tb {
		return ta < tb
	}
	return a < b
}

func (h *releaseHeap) push(task int, at float64) {
	h.time[task] = at
	h.idx = append(h.idx, task)
	i := len(h.idx) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.lessIdx(h.idx[i], h.idx[p]) {
			break
		}
		h.idx[i], h.idx[p] = h.idx[p], h.idx[i]
		i = p
	}
}

func (h *releaseHeap) pop() int {
	top := h.idx[0]
	n := len(h.idx) - 1
	h.idx[0] = h.idx[n]
	h.idx = h.idx[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && h.lessIdx(h.idx[r], h.idx[l]) {
			m = r
		}
		if !h.lessIdx(h.idx[m], h.idx[i]) {
			break
		}
		h.idx[i], h.idx[m] = h.idx[m], h.idx[i]
		i = m
	}
	return top
}
