package sim

import (
	"reflect"
	"testing"

	"chebymc/internal/dist"
)

func replicateCfg(t *testing.T) Config {
	t.Helper()
	d, err := dist.NewTruncNormal(15, 2.5, 0, 60)
	if err != nil {
		t.Fatal(err)
	}
	return Config{Horizon: 2000, Exec: map[int]dist.Dist{1: d}, Seed: 9}
}

func TestReplicateWorkerInvariant(t *testing.T) {
	ts := mkSet(t)
	cfg := replicateCfg(t)
	base, err := Replicate(ts, cfg, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != 16 {
		t.Fatalf("got %d runs, want 16", len(base))
	}
	for _, workers := range []int{2, 8} {
		got, err := Replicate(ts, cfg, 16, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("workers=%d metrics diverge from serial", workers)
		}
	}
}

func TestReplicateRunsAreIndependent(t *testing.T) {
	ts := mkSet(t)
	ms, err := Replicate(ts, replicateCfg(t), 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Derived per-run seeds must differ: with a stochastic execution
	// distribution, at least two runs must observe different overrun
	// counts (all-equal would suggest a shared seed).
	distinct := map[int]bool{}
	for _, m := range ms {
		distinct[m.Overruns] = true
		if m.HCReleased == 0 {
			t.Fatal("a replication released no HC jobs")
		}
	}
	if len(distinct) < 2 {
		t.Errorf("all %d runs have identical overrun counts %v — seeds look shared", len(ms), ms[0].Overruns)
	}
}

func TestReplicateValidation(t *testing.T) {
	ts := mkSet(t)
	if _, err := Replicate(ts, replicateCfg(t), 0, 4); err == nil {
		t.Error("runs = 0 must error")
	}
	if _, err := Replicate(ts, Config{Horizon: -1}, 4, 2); err == nil {
		t.Error("invalid config must error")
	}
	if _, err := Replicate(nil, replicateCfg(t), 4, 2); err == nil {
		t.Error("nil task set must error")
	}
}

func TestSummarize(t *testing.T) {
	if s := Summarize(nil); s.Runs != 0 || s.MeanOverrunRate != 0 {
		t.Error("empty summary must be zero")
	}
	ts := mkSet(t)
	ms, err := Replicate(ts, replicateCfg(t), 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(ms)
	if s.Runs != 6 {
		t.Errorf("runs = %d, want 6", s.Runs)
	}
	if s.MeanUtilisation <= 0 || s.MeanUtilisation > 1 {
		t.Errorf("mean utilisation %g implausible", s.MeanUtilisation)
	}
	if s.MeanOverrunRate < 0 || s.MeanOverrunRate > 1 {
		t.Errorf("mean overrun rate %g out of [0, 1]", s.MeanOverrunRate)
	}
}
