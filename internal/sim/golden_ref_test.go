package sim

// This file carries a frozen copy of the pre-heap simulator event loop —
// the seed implementation with O(n) linear scans over the ready queue and
// the task array — as the reference for the golden-equivalence suite in
// golden_test.go. The determinism contract of the heap rewrite is that
// every Metrics field, every per-task metric and the complete event log
// are byte-for-byte identical to this implementation for every seed,
// policy, jitter configuration and virtual-deadline factor. Do not
// "improve" this code: its value is that it does not change.

import (
	"math"
	"math/rand"
	"sort"

	"chebymc/internal/mc"
)

// refResult bundles everything observable from one reference run.
type refResult struct {
	metrics Metrics
	perTask []TaskMetrics
	events  []Event
}

// refRun replays the seed implementation on an already-validated
// Simulator (New normalises the config — DegradeFactor default, X from
// the EDF-VD analysis — so the reference sees exactly what Run sees).
func refRun(s *Simulator) refResult {
	cfg := s.cfg
	r := rand.New(rand.NewSource(cfg.Seed))
	var m Metrics
	m.Time = cfg.Horizon

	perTask := make(map[int]*TaskMetrics, len(s.ts.Tasks))
	for _, t := range s.ts.Tasks {
		perTask[t.ID] = &TaskMetrics{ID: t.ID, Crit: t.Crit}
	}
	var events []Event
	record := func(t float64, k EventKind, taskID int) {
		if cfg.MaxEvents <= 0 || len(events) >= cfg.MaxEvents {
			return
		}
		events = append(events, Event{Time: t, Kind: k, TaskID: taskID})
	}

	tasks := s.ts.Tasks
	nextRelease := make([]float64, len(tasks))
	mode := mc.LO
	var ready []*job
	now := 0.0
	lastHIEnter := 0.0

	drawExec := func(t *mc.Task) float64 {
		d, ok := cfg.Exec[t.ID]
		if !ok {
			return t.CLO
		}
		x := d.Sample(r)
		if x < 0 {
			x = 0
		}
		limit := t.CHI
		if t.Crit == mc.LC {
			limit = t.CLO
		}
		if x > limit {
			x = limit
		}
		return x
	}

	release := func(i int, at float64) {
		t := &tasks[i]
		gap := t.Period
		if jd, ok := cfg.Jitter[t.ID]; ok {
			if j := jd.Sample(r); j > 0 {
				gap += j
			}
		}
		nextRelease[i] = at + gap
		j := &job{
			task:      t,
			release:   at,
			absDL:     at + t.Period,
			virtDL:    at + t.Period,
			execTotal: drawExec(t),
		}
		j.remaining = j.execTotal
		tm := perTask[t.ID]
		tm.Released++
		record(at, EvRelease, t.ID)
		if t.Crit == mc.HC {
			m.HCReleased++
			if j.execTotal > t.CLO {
				m.Overruns++
				tm.Overruns++
			}
			if mode == mc.LO {
				j.virtDL = at + cfg.X*t.Period
			}
		} else {
			m.LCReleased++
			if mode == mc.HI {
				switch cfg.Policy {
				case DropAll:
					j.dropped = true
					m.LCDropped++
					tm.Dropped++
					record(at, EvDrop, t.ID)
					return
				case Degrade:
					j.degraded = true
					m.LCDegraded++
					j.remaining *= cfg.DegradeFactor
				}
			}
		}
		ready = append(ready, j)
	}

	pick := func() *job {
		var best *job
		for _, j := range ready {
			if best == nil ||
				j.virtDL < best.virtDL ||
				(j.virtDL == best.virtDL && j.task.ID < best.task.ID) {
				best = j
			}
		}
		return best
	}

	removeJob := func(target *job) {
		for i, j := range ready {
			if j == target {
				ready[i] = ready[len(ready)-1]
				ready = ready[:len(ready)-1]
				return
			}
		}
	}

	hasReadyHC := func() bool {
		for _, j := range ready {
			if j.task.Crit == mc.HC {
				return true
			}
		}
		return false
	}

	enterHI := func() {
		mode = mc.HI
		m.ModeSwitches++
		lastHIEnter = now
		record(now, EvSwitchHI, 0)
		var kept []*job
		for _, j := range ready {
			if j.task.Crit == mc.HC {
				j.virtDL = j.absDL
				kept = append(kept, j)
				continue
			}
			switch cfg.Policy {
			case DropAll:
				j.dropped = true
				m.LCDropped++
				perTask[j.task.ID].Dropped++
				record(now, EvDrop, j.task.ID)
			case Degrade:
				if !j.degraded {
					j.degraded = true
					m.LCDegraded++
					j.remaining *= cfg.DegradeFactor
				}
				kept = append(kept, j)
			}
		}
		ready = kept
	}

	exitHI := func() {
		mode = mc.LO
		m.TimeInHI += now - lastHIEnter
		record(now, EvSwitchLO, 0)
	}

	for i := range tasks {
		nextRelease[i] = 0
	}

	for now < cfg.Horizon {
		for i := range tasks {
			for nextRelease[i] <= now && nextRelease[i] < cfg.Horizon {
				release(i, nextRelease[i])
			}
		}

		run := pick()

		nextRel := math.Inf(1)
		for i := range tasks {
			if nextRelease[i] > now && nextRelease[i] < nextRel && nextRelease[i] < cfg.Horizon {
				nextRel = nextRelease[i]
			}
		}

		if run == nil {
			if math.IsInf(nextRel, 1) {
				break
			}
			now = nextRel
			continue
		}

		milestone := run.remaining
		budgetSwitch := false
		if mode == mc.LO && run.task.Crit == mc.HC {
			budgetLeft := run.task.CLO - run.consumed
			if budgetLeft < milestone {
				milestone = budgetLeft
				budgetSwitch = true
			}
		}
		end := now + milestone
		if end > nextRel {
			delta := nextRel - now
			run.remaining -= delta
			run.consumed += delta
			m.BusyTime += delta
			now = nextRel
			continue
		}
		if end > cfg.Horizon {
			delta := cfg.Horizon - now
			run.remaining -= delta
			run.consumed += delta
			m.BusyTime += delta
			now = cfg.Horizon
			break
		}

		run.remaining -= milestone
		run.consumed += milestone
		m.BusyTime += milestone
		now = end

		if budgetSwitch && run.remaining > 0 {
			enterHI()
			continue
		}
		if run.remaining <= 1e-12 {
			removeJob(run)
			tm := perTask[run.task.ID]
			tm.Completed++
			resp := now - run.release
			tm.sumResponse += resp
			if resp > tm.MaxResponse {
				tm.MaxResponse = resp
			}
			missed := now > run.absDL+1e-9
			if missed {
				tm.Misses++
				record(now, EvMiss, run.task.ID)
			} else {
				record(now, EvComplete, run.task.ID)
			}
			if run.task.Crit == mc.HC {
				m.HCCompleted++
				if missed {
					m.HCMisses++
				}
			} else {
				m.LCCompleted++
				if missed {
					m.LCMisses++
				}
			}
			if mode == mc.HI && !hasReadyHC() {
				exitHI()
			}
		}
	}
	if mode == mc.HI {
		m.TimeInHI += cfg.Horizon - lastHIEnter
	}

	out := refResult{metrics: m, events: events}
	for _, tm := range perTask {
		out.perTask = append(out.perTask, *tm)
	}
	sort.Slice(out.perTask, func(i, j int) bool { return out.perTask[i].ID < out.perTask[j].ID })
	return out
}
