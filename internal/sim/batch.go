package sim

// Batch-lockstep replication engine. ReplicateCtx simulates each Monte
// Carlo replication in isolation: every run builds a Simulator (task
// validation, dense map resolution, EDF-VD analysis), allocates its job
// records through the arena, and walks its own release heap — even
// though, without release jitter, every replication releases exactly the
// same jobs at exactly the same instants and differs only in the
// execution times it draws.
//
// The batch engine exploits that: it advances B replications in lockstep
// over a single shared release skeleton. One release heap is walked once
// per batch, emitting release *epochs* (an instant plus the dense task
// indices releasing then, in task order — the same (time, index) order
// the scalar loop drains). At each epoch every replication is advanced
// from the previous epoch to the new instant and handed the epoch's
// releases; between epochs no releases exist, so the per-replication
// inner loop degenerates to "run the EDF-VD front job to its next
// milestone" with no heap-against-heap comparisons.
//
// Per-replication job state lives in flat structure-of-arrays slices
// (jobTask, jobVirtDL, jobRemaining, ...) indexed by int32 slots from a
// shared free-list pool sized width×tasks up front, so a batch allocates
// nothing in steady state and the hot loop walks contiguous float64
// arrays instead of pointer-linked job structs. Each replication keeps
// its own RNG stream — seeded rng.Derive(cfg.Seed, runIndex), exactly
// the scalar derivation — its own ready heap and insertion-order view
// (both slices of slots), and its own Metrics.
//
// Equivalence contract: for every configuration and every batch width,
// ReplicateBatchCtx returns bit-identical Metrics to ReplicateCtx
// (golden_batch_test.go pins it). The fast path reproduces the scalar
// event loop's decisions literally — same milestone arithmetic, same
// tie-breaks, same RNG draw order per replication — and configurations
// it does not model (release jitter, whose draws interleave with
// execution draws and desynchronise the release skeleton across
// replications; event logging) are delegated to the scalar Simulator
// per replication, which is identical by definition.

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"chebymc/internal/dist"
	"chebymc/internal/mc"
	"chebymc/internal/par"
	"chebymc/internal/rng"
)

// DefaultBatchWidth is the lockstep width ReplicateBatchCtx and
// ReplicateInto use when the caller passes batch ≤ 0. Wide enough to
// amortise the shared skeleton walk, small enough that a batch's SoA
// working set stays cache-resident for paper-sized task sets.
const DefaultBatchWidth = 32

// ReplicateBatchCtx is ReplicateCtx on the batch-lockstep engine: the
// same task set and configuration simulated runs times with per-run
// derived seeds, returning metrics in run order. batch selects the
// lockstep width (≤ 0 for DefaultBatchWidth); the result is
// bit-identical to ReplicateCtx for every batch and workers value.
func ReplicateBatchCtx(ctx context.Context, ts *mc.TaskSet, cfg Config, runs, workers, batch int) ([]Metrics, error) {
	if runs < 1 {
		return nil, fmt.Errorf("sim: need runs ≥ 1, got %d", runs)
	}
	out := make([]Metrics, runs)
	if err := ReplicateInto(ctx, ts, cfg, 0, runs, workers, batch, func(run int, m Metrics) {
		out[run] = m
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// ReplicateInto folds the metrics of replications [from, to) — numbered
// in the same global run index space as ReplicateCtx, so replication i
// is identical regardless of the range it is computed in — through fold
// in run order, without retaining more than one worker wave of results.
// It is the aggregation form: sweeps that only reduce (Summarize, CI
// accumulation) never materialise a runs-sized []Metrics, and adaptive
// allocators extend a prefix [0, n) incrementally by calling it again
// with from = n.
func ReplicateInto(ctx context.Context, ts *mc.TaskSet, cfg Config, from, to, workers, batch int, fold func(run int, m Metrics)) error {
	if from < 0 || to < from {
		return fmt.Errorf("sim: bad replication range [%d, %d)", from, to)
	}
	if to == from {
		return nil
	}
	// Resolve the configuration once (validation, EDF-VD X) exactly like
	// ReplicateCtx, and reuse its dense distribution tables.
	probe, err := New(ts, cfg)
	if err != nil {
		return err
	}
	base := probe.cfg
	// The lockstep engine models the system-level protocol over a shared
	// periodic release skeleton; task-level groups and sporadic gaps are
	// per-replication state, so those configurations delegate to the
	// scalar path chunk-by-chunk (still bit-identical to ReplicateCtx).
	fast := base.MaxEvents == 0 && base.Protocol == SystemLevel && releaseIsPeriodic(base.Release)
	for _, d := range probe.jitter {
		if d != nil {
			fast = false
			break
		}
	}
	width := batch
	if width <= 0 {
		width = DefaultBatchWidth
	}
	if n := to - from; width > n {
		width = n
	}
	type chunk struct{ lo, hi int }
	chunks := make([]chunk, 0, (to-from+width-1)/width)
	for lo := from; lo < to; lo += width {
		hi := lo + width
		if hi > to {
			hi = to
		}
		chunks = append(chunks, chunk{lo, hi})
	}
	if workers < 1 {
		workers = 1
	}
	// Waves of one chunk per worker: results fold in run order after
	// each wave, bounding retained metrics at workers × width.
	for w := 0; w < len(chunks); w += workers {
		n := len(chunks) - w
		if n > workers {
			n = workers
		}
		res, err := par.MapCtx(ctx, workers, n, func(k int) ([]Metrics, error) {
			c := chunks[w+k]
			if !fast {
				return scalarChunk(ts, base, cfg.Seed, c.lo, c.hi)
			}
			b := batchPool.Get().(*batchSim)
			ms := b.run(probe, cfg.Seed, c.lo, c.hi)
			batchPool.Put(b)
			return ms, nil
		})
		if err != nil {
			return err
		}
		for k, ms := range res {
			for i, m := range ms {
				fold(chunks[w+k].lo+i, m)
			}
		}
	}
	return nil
}

// scalarChunk runs replications [lo, hi) through the scalar Simulator —
// the delegation path for configurations the lockstep engine does not
// model. Seeds derive exactly as in ReplicateCtx.
func scalarChunk(ts *mc.TaskSet, base Config, root int64, lo, hi int) ([]Metrics, error) {
	out := make([]Metrics, hi-lo)
	for i := lo; i < hi; i++ {
		c := base
		c.Seed = rng.Derive(root, int64(i))
		s, err := New(ts, c)
		if err != nil {
			return nil, err
		}
		out[i-lo] = s.Run()
	}
	return out, nil
}

// batchPool recycles batch engines (their SoA arrays and per-replication
// scratch) across chunks and calls, like the scalar arenaPool.
var batchPool = sync.Pool{New: func() any { return new(batchSim) }}

// batchSim is one lockstep batch in flight. All job state is
// structure-of-arrays, indexed by int32 slots from a free-list pool; all
// per-replication state is parallel slices indexed by the replication's
// position in the batch.
type batchSim struct {
	cfg   Config
	tasks []mc.Task
	exec  []dist.Dist // dense per-task execution dists (shared with the probe)

	// Job pool (SoA). Slots are allocated at release and freed at
	// completion or drop; the pool is pre-grown to width×tasks — the
	// steady-state ready population — and extends only under deadline
	// backlog.
	jobTask      []int32
	jobRelease   []float64
	jobAbsDL     []float64
	jobVirtDL    []float64
	jobRemaining []float64
	jobConsumed  []float64
	jobDegraded  []bool
	jobHeapIdx   []int32
	jobOrderIdx  []int32
	freeJobs     []int32

	// Per-replication state.
	rngs        []*rand.Rand
	mode        []mc.Mode
	hcReady     []int32
	now         []float64
	lastHIEnter []float64
	interrupted []int32 // job slot preempted by the last epoch, or −1
	preempts    []uint64
	mets        []Metrics
	heaps       [][]int32 // EDF-VD ready heap per replication
	orders      [][]int32 // ready jobs in insertion order per replication

	// Shared release-skeleton walker.
	relHeap releaseHeap
	epoch   []int32
}

// run simulates replications [lo, hi) (global run indices) in lockstep
// and returns their metrics in run order.
func (b *batchSim) run(probe *Simulator, root int64, lo, hi int) []Metrics {
	B := hi - lo
	b.setup(probe, B)
	horizon := b.cfg.Horizon
	for r := 0; r < B; r++ {
		b.rngs[r].Seed(rng.Derive(root, int64(lo+r)))
	}

	// Walk the shared release skeleton: the heap holds each task's next
	// release; an epoch pops every task due at the minimum instant in
	// dense-index order — the exact (time, index) drain order of the
	// scalar loop — and re-pushes the follow-up release when it lands
	// inside the horizon.
	b.relHeap.reset(len(b.tasks))
	for i := range b.tasks {
		b.relHeap.push(i, 0)
	}
	for b.relHeap.len() > 0 {
		t0 := b.relHeap.time[b.relHeap.minIdx()]
		b.epoch = b.epoch[:0]
		for b.relHeap.len() > 0 && b.relHeap.time[b.relHeap.minIdx()] == t0 {
			i := b.relHeap.pop()
			b.epoch = append(b.epoch, int32(i))
			if next := t0 + b.tasks[i].Period; next < horizon {
				b.relHeap.push(i, next)
			}
		}
		for r := 0; r < B; r++ {
			b.advance(r, t0, false)
			for _, ti := range b.epoch {
				b.release(r, int(ti), t0)
			}
		}
	}

	out := make([]Metrics, B)
	for r := 0; r < B; r++ {
		b.advance(r, horizon, true)
		m := &b.mets[r]
		if b.mode[r] == mc.HI {
			m.TimeInHI += horizon - b.lastHIEnter[r]
		}
		recordRun(*m, b.preempts[r])
		out[r] = *m
	}
	obsBatchRuns.Add(uint64(B))
	obsBatchWidth.Observe(float64(B))
	return out
}

// setup points the engine at the probe's resolved configuration and
// resets pool and per-replication state for a batch of the given width.
func (b *batchSim) setup(probe *Simulator, width int) {
	b.cfg = probe.cfg
	b.tasks = probe.ts.Tasks
	b.exec = probe.exec

	b.jobTask = b.jobTask[:0]
	b.jobRelease = b.jobRelease[:0]
	b.jobAbsDL = b.jobAbsDL[:0]
	b.jobVirtDL = b.jobVirtDL[:0]
	b.jobRemaining = b.jobRemaining[:0]
	b.jobConsumed = b.jobConsumed[:0]
	b.jobDegraded = b.jobDegraded[:0]
	b.jobHeapIdx = b.jobHeapIdx[:0]
	b.jobOrderIdx = b.jobOrderIdx[:0]
	b.freeJobs = b.freeJobs[:0]

	for len(b.rngs) < width {
		b.rngs = append(b.rngs, rand.New(rand.NewSource(0)))
	}
	grow := func(n int) {
		for len(b.heaps) < n {
			b.heaps = append(b.heaps, nil)
			b.orders = append(b.orders, nil)
		}
	}
	grow(width)
	if cap(b.mode) < width {
		b.mode = make([]mc.Mode, width)
		b.hcReady = make([]int32, width)
		b.now = make([]float64, width)
		b.lastHIEnter = make([]float64, width)
		b.interrupted = make([]int32, width)
		b.preempts = make([]uint64, width)
		b.mets = make([]Metrics, width)
	}
	b.mode = b.mode[:width]
	b.hcReady = b.hcReady[:width]
	b.now = b.now[:width]
	b.lastHIEnter = b.lastHIEnter[:width]
	b.interrupted = b.interrupted[:width]
	b.preempts = b.preempts[:width]
	b.mets = b.mets[:width]
	for r := 0; r < width; r++ {
		b.mode[r] = mc.LO
		b.hcReady[r] = 0
		b.now[r] = 0
		b.lastHIEnter[r] = 0
		b.interrupted[r] = -1
		b.preempts[r] = 0
		b.mets[r] = Metrics{Time: b.cfg.Horizon}
		b.heaps[r] = b.heaps[r][:0]
		b.orders[r] = b.orders[r][:0]
	}
	// Pre-grow the slot pool to the steady-state ready population and
	// place every slot on the free list (lowest slot on top).
	n := width * len(b.tasks)
	for len(b.jobTask) < n {
		b.extend()
	}
	for s := n - 1; s >= 0; s-- {
		b.freeJobs = append(b.freeJobs, int32(s))
	}
}

// alloc returns a free job slot, extending the SoA arrays when the pool
// is dry (deadline backlog). Fields are fully rewritten at release, so
// recycled slots need no zeroing.
func (b *batchSim) alloc() int32 {
	if n := len(b.freeJobs); n > 0 {
		s := b.freeJobs[n-1]
		b.freeJobs = b.freeJobs[:n-1]
		return s
	}
	return b.extend()
}

// extend appends one zeroed slot to every SoA array.
func (b *batchSim) extend() int32 {
	s := int32(len(b.jobTask))
	b.jobTask = append(b.jobTask, 0)
	b.jobRelease = append(b.jobRelease, 0)
	b.jobAbsDL = append(b.jobAbsDL, 0)
	b.jobVirtDL = append(b.jobVirtDL, 0)
	b.jobRemaining = append(b.jobRemaining, 0)
	b.jobConsumed = append(b.jobConsumed, 0)
	b.jobDegraded = append(b.jobDegraded, false)
	b.jobHeapIdx = append(b.jobHeapIdx, 0)
	b.jobOrderIdx = append(b.jobOrderIdx, 0)
	return s
}

// advance runs replication r's scheduler from its current instant to
// until — an epoch boundary, or the horizon when final is true. It is
// the scalar event loop between releases: pick the EDF-VD front job, run
// it to its next milestone (completion, C^LO exhaustion, or the
// boundary), handle mode switches and completions, repeat.
func (b *batchSim) advance(r int, until float64, final bool) {
	m := &b.mets[r]
	for {
		run := int32(-1)
		if h := b.heaps[r]; len(h) > 0 {
			run = h[0]
		}
		if itr := b.interrupted[r]; itr >= 0 {
			// The interrupted job is still ready, so slot identity is
			// stable: a different front job means the epoch's releases
			// preempted it.
			if run != itr {
				b.preempts[r]++
			}
			b.interrupted[r] = -1
		}
		if run < 0 {
			b.now[r] = until
			return
		}
		ti := int(b.jobTask[run])
		milestone := b.jobRemaining[run]
		budgetSwitch := false
		if b.mode[r] == mc.LO && b.tasks[ti].Crit == mc.HC {
			if budgetLeft := b.tasks[ti].CLO - b.jobConsumed[run]; budgetLeft < milestone {
				milestone = budgetLeft
				budgetSwitch = true
			}
		}
		end := b.now[r] + milestone
		if end > until {
			delta := until - b.now[r]
			b.jobRemaining[run] -= delta
			b.jobConsumed[run] += delta
			m.BusyTime += delta
			b.now[r] = until
			if !final {
				b.interrupted[r] = run
			}
			return
		}
		b.jobRemaining[run] -= milestone
		b.jobConsumed[run] += milestone
		m.BusyTime += milestone
		b.now[r] = end
		if budgetSwitch && b.jobRemaining[run] > 0 {
			b.enterHI(r)
			continue
		}
		if b.jobRemaining[run] <= 1e-12 {
			b.removeReady(r, run)
			missed := b.now[r] > b.jobAbsDL[run]+1e-9
			if b.tasks[ti].Crit == mc.HC {
				m.HCCompleted++
				if missed {
					m.HCMisses++
				}
			} else {
				m.LCCompleted++
				if missed {
					m.LCMisses++
				}
			}
			b.freeJobs = append(b.freeJobs, run)
			if b.mode[r] == mc.HI && b.hcReady[r] == 0 {
				b.mode[r] = mc.LO
				m.TimeInHI += b.now[r] - b.lastHIEnter[r]
			}
		}
	}
}

// release hands replication r one job of task i at instant at —
// the scalar release() minus the next-release push (the shared skeleton
// owns that) and the jitter draw (jitter configs never reach this path).
func (b *batchSim) release(r, i int, at float64) {
	t := &b.tasks[i]
	m := &b.mets[r]
	// The execution draw happens before any drop decision, exactly like
	// the scalar path: dropped LC jobs still consume their draw.
	exec := b.drawExec(r, i, t)
	degraded := false
	if t.Crit == mc.HC {
		m.HCReleased++
		if exec > t.CLO {
			m.Overruns++
		}
	} else {
		m.LCReleased++
		if b.mode[r] == mc.HI {
			switch b.cfg.Policy {
			case DropAll:
				m.LCDropped++
				return
			case Degrade:
				degraded = true
				m.LCDegraded++
				exec *= b.cfg.DegradeFactor
			}
		}
	}
	j := b.alloc()
	b.jobTask[j] = int32(i)
	b.jobRelease[j] = at
	b.jobAbsDL[j] = at + t.Period
	b.jobVirtDL[j] = at + t.Period
	b.jobRemaining[j] = exec
	b.jobConsumed[j] = 0
	b.jobDegraded[j] = degraded
	if t.Crit == mc.HC && b.mode[r] == mc.LO {
		b.jobVirtDL[j] = at + b.cfg.X*t.Period
	}
	b.addReady(r, j)
}

func (b *batchSim) drawExec(r, i int, t *mc.Task) float64 {
	d := b.exec[i]
	if d == nil {
		return t.CLO
	}
	x := d.Sample(b.rngs[r])
	if x < 0 {
		x = 0
	}
	limit := t.CHI
	if t.Crit == mc.LC {
		limit = t.CLO
	}
	if x > limit {
		x = limit
	}
	return x
}

// enterHI switches replication r to HI mode: HC jobs regain their real
// deadlines, LC jobs are dropped or degraded in insertion order (the
// scalar drop order), and the ready heap is rebuilt in O(n).
func (b *batchSim) enterHI(r int) {
	m := &b.mets[r]
	b.mode[r] = mc.HI
	m.ModeSwitches++
	b.lastHIEnter[r] = b.now[r]
	order := b.orders[r]
	kept := order[:0]
	for _, j := range order {
		if b.tasks[b.jobTask[j]].Crit == mc.HC {
			b.jobVirtDL[j] = b.jobAbsDL[j]
			b.jobOrderIdx[j] = int32(len(kept))
			kept = append(kept, j)
			continue
		}
		switch b.cfg.Policy {
		case DropAll:
			m.LCDropped++
			b.freeJobs = append(b.freeJobs, j)
		case Degrade:
			if !b.jobDegraded[j] {
				b.jobDegraded[j] = true
				m.LCDegraded++
				b.jobRemaining[j] *= b.cfg.DegradeFactor
			}
			b.jobOrderIdx[j] = int32(len(kept))
			kept = append(kept, j)
		}
	}
	b.orders[r] = kept
	h := append(b.heaps[r][:0], kept...)
	for idx, j := range h {
		b.jobHeapIdx[j] = int32(idx)
	}
	for idx := len(h)/2 - 1; idx >= 0; idx-- {
		b.down(h, idx)
	}
	b.heaps[r] = h
}

func (b *batchSim) addReady(r int, j int32) {
	b.jobOrderIdx[j] = int32(len(b.orders[r]))
	b.orders[r] = append(b.orders[r], j)
	h := append(b.heaps[r], j)
	b.jobHeapIdx[j] = int32(len(h) - 1)
	b.up(h, len(h)-1)
	b.heaps[r] = h
	if b.tasks[b.jobTask[j]].Crit == mc.HC {
		b.hcReady[r]++
	}
}

func (b *batchSim) removeReady(r int, j int32) {
	o := b.orders[r]
	last := len(o) - 1
	moved := o[last]
	o[b.jobOrderIdx[j]] = moved
	b.jobOrderIdx[moved] = b.jobOrderIdx[j]
	b.orders[r] = o[:last]
	h := b.heaps[r]
	i := int(b.jobHeapIdx[j])
	n := len(h) - 1
	lastJ := h[n]
	h = h[:n]
	b.heaps[r] = h
	if i != n {
		h[i] = lastJ
		b.jobHeapIdx[lastJ] = int32(i)
		if !b.down(h, i) {
			b.up(h, i)
		}
	}
	if b.tasks[b.jobTask[j]].Crit == mc.HC {
		b.hcReady[r]--
	}
}

// less is the EDF-VD priority over job slots: earliest virtual deadline,
// ties broken by task ID — jobLess on the SoA layout.
func (b *batchSim) less(x, y int32) bool {
	if b.jobVirtDL[x] != b.jobVirtDL[y] {
		return b.jobVirtDL[x] < b.jobVirtDL[y]
	}
	return b.tasks[b.jobTask[x]].ID < b.tasks[b.jobTask[y]].ID
}

func (b *batchSim) up(h []int32, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !b.less(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		b.jobHeapIdx[h[i]] = int32(i)
		b.jobHeapIdx[h[p]] = int32(p)
		i = p
	}
}

func (b *batchSim) down(h []int32, i int) bool {
	i0 := i
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if rt := l + 1; rt < n && b.less(h[rt], h[l]) {
			m = rt
		}
		if !b.less(h[m], h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		b.jobHeapIdx[h[i]] = int32(i)
		b.jobHeapIdx[h[m]] = int32(m)
		i = m
	}
	return i > i0
}
