package sim

import (
	"testing"

	"chebymc/internal/mc"
	"chebymc/internal/stats"
)

func TestPerTaskBeforeRun(t *testing.T) {
	ts := mkSet(t)
	s, err := New(ts, Config{Horizon: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if s.PerTask() != nil {
		t.Error("PerTask must be nil before Run")
	}
}

func TestPerTaskConsistentWithAggregate(t *testing.T) {
	ts := mkSet(t)
	s, err := New(ts, overrunConfig(t, ts, DropAll))
	if err != nil {
		t.Fatal(err)
	}
	m := s.Run()
	per := s.PerTask()
	if len(per) != 2 {
		t.Fatalf("per-task entries = %d, want 2", len(per))
	}
	var rel, comp, drop, over int
	for _, tm := range per {
		rel += tm.Released
		comp += tm.Completed
		drop += tm.Dropped
		over += tm.Overruns
	}
	if rel != m.HCReleased+m.LCReleased {
		t.Errorf("per-task released %d != aggregate %d", rel, m.HCReleased+m.LCReleased)
	}
	if comp != m.HCCompleted+m.LCCompleted {
		t.Errorf("per-task completed %d != aggregate %d", comp, m.HCCompleted+m.LCCompleted)
	}
	if drop != m.LCDropped {
		t.Errorf("per-task dropped %d != aggregate %d", drop, m.LCDropped)
	}
	if over != m.Overruns {
		t.Errorf("per-task overruns %d != aggregate %d", over, m.Overruns)
	}
}

func TestPerTaskResponseTimes(t *testing.T) {
	ts := mkSet(t)
	s, err := New(ts, Config{Horizon: 10000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	hc, ok := s.TaskMetricsFor(1)
	if !ok {
		t.Fatal("missing task 1 metrics")
	}
	// Deterministic exec = C^LO = 20; the HC task shares the core with
	// an LC task, so responses are ≥ 20 and ≤ the period.
	if hc.MeanResponse() < 20-1e-9 {
		t.Errorf("mean response %g below execution time", hc.MeanResponse())
	}
	if hc.MaxResponse > 100 {
		t.Errorf("max response %g above period for a schedulable set", hc.MaxResponse)
	}
	if hc.ServiceRate() != 1 {
		t.Errorf("service rate %g, want 1", hc.ServiceRate())
	}
	if _, ok := s.TaskMetricsFor(99); ok {
		t.Error("unknown task id must miss")
	}
}

func TestPerTaskOverrunRateBoundedByCantelli(t *testing.T) {
	// Per-task rates (not just the aggregate) must respect the per-task
	// Theorem 1 bound the assignment used.
	ts := mkSet(t)
	s, err := New(ts, overrunConfig(t, ts, DropAll))
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	hc, _ := s.TaskMetricsFor(1)
	// C^LO = 20 = ACET 15 + 2σ: bound = 1/(1+4) = 0.2.
	if hc.OverrunRate() > stats.CantelliBound(2)+0.02 {
		t.Errorf("per-task overrun %g above bound", hc.OverrunRate())
	}
	if hc.Crit != mc.HC {
		t.Error("criticality lost in metrics")
	}
}

func TestTaskMetricsString(t *testing.T) {
	tm := TaskMetrics{ID: 3, Crit: mc.LC, Released: 5, Completed: 4}
	s := tm.String()
	if s == "" || tm.MeanResponse() != 0 {
		t.Error("string/zero-response handling wrong")
	}
	// Zero released: rates must be zero.
	var z TaskMetrics
	if z.OverrunRate() != 0 || z.ServiceRate() != 0 {
		t.Error("zero-task rates must be 0")
	}
}
