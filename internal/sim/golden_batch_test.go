package sim

// Batch-equivalence suite: ReplicateBatchCtx must reproduce ReplicateCtx
// byte for byte — every Metrics field of every replication — at every
// batch width, across the full golden configuration matrix (task-set
// shapes × policies × X × jitter × seeds). Jitter and event-logging
// configurations take the engine's scalar delegation path and must match
// just the same; width invariance (any B gives identical results) is
// pinned separately as a property in its own right, since the adaptive
// allocator and the CI checkpoint-identity assertion both build on it.

import (
	"context"
	"fmt"
	"testing"

	"chebymc/internal/dist"
	"chebymc/internal/mc"
)

// batchGoldenExec builds the golden matrix's execution distributions: a
// TruncNormal with a tail well past C^LO so overruns and mode switches
// occur.
func batchGoldenExec(t *testing.T, ts *mc.TaskSet) map[int]dist.Dist {
	t.Helper()
	exec := map[int]dist.Dist{}
	for _, task := range ts.Tasks {
		hi := task.CHI
		if task.Crit == mc.LC {
			hi = task.CLO
		}
		d, err := dist.NewTruncNormal(0.9*task.CLO, 0.25*task.CLO, 0, 1.2*hi)
		if err != nil {
			t.Fatal(err)
		}
		exec[task.ID] = d
	}
	return exec
}

// assertBatchEqual compares ReplicateBatchCtx against ReplicateCtx for
// one configuration at several widths, including width 1 (pure lockstep
// overhead), a width that does not divide runs, and widths at and past
// runs.
func assertBatchEqual(t *testing.T, ts *mc.TaskSet, cfg Config, runs int) {
	t.Helper()
	ctx := context.Background()
	want, err := ReplicateCtx(ctx, ts, cfg, runs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{1, 4, 32, runs} {
		got, err := ReplicateBatchCtx(ctx, ts, cfg, runs, 4, batch)
		if err != nil {
			t.Fatalf("batch=%d: %v", batch, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("batch=%d run=%d diverges:\n got  %+v\n want %+v",
					batch, i, got[i], want[i])
			}
		}
	}
}

// TestBatchEquivalenceMatrix sweeps the golden matrix through the batch
// engine. Jitter variants exercise the scalar delegation path (the
// lockstep skeleton cannot model desynchronised releases); the rest run
// the SoA fast path.
func TestBatchEquivalenceMatrix(t *testing.T) {
	uni, err := dist.NewUniform(0, 20)
	if err != nil {
		t.Fatal(err)
	}
	jitters := map[string]func(*mc.TaskSet) map[int]dist.Dist{
		"none": func(*mc.TaskSet) map[int]dist.Dist { return nil },
		"uniform": func(ts *mc.TaskSet) map[int]dist.Dist {
			j := map[int]dist.Dist{}
			for i, task := range ts.Tasks {
				if i%2 == 0 {
					j[task.ID] = uni
				}
			}
			return j
		},
	}
	for setName, ts := range goldenSets(t) {
		exec := batchGoldenExec(t, ts)
		for jitName, mkJitter := range jitters {
			for _, pol := range []Policy{DropAll, Degrade} {
				for _, x := range []float64{0, 0.9} {
					if x == 0 && setName == "all-LC" {
						continue // EDF-VD X is undefined without HC tasks
					}
					cfg := Config{
						Horizon: 20000,
						Policy:  pol,
						Exec:    exec,
						Jitter:  mkJitter(ts),
						X:       x,
						Seed:    1,
					}
					name := fmt.Sprintf("%s/%s/%v/x=%g", setName, jitName, pol, x)
					t.Run(name, func(t *testing.T) {
						assertBatchEqual(t, ts, cfg, 33)
					})
				}
			}
		}
	}
}

// TestBatchEquivalenceDegenerate covers the corner configurations: tiny
// horizons that cut the first jobs, no execution distributions (zero
// RNG draws), custom degrade factors, the 20-task benchmark workload,
// and event logging (which must delegate to the scalar path).
func TestBatchEquivalenceDegenerate(t *testing.T) {
	sets := goldenSets(t)

	t.Run("horizon-shorter-than-first-period", func(t *testing.T) {
		assertBatchEqual(t, sets["two-task"], Config{Horizon: 30, Seed: 1}, 17)
	})
	t.Run("horizon-cuts-running-job", func(t *testing.T) {
		assertBatchEqual(t, sets["two-task"], Config{Horizon: 15, Seed: 1}, 17)
	})
	t.Run("no-exec-dists", func(t *testing.T) {
		assertBatchEqual(t, sets["heavy"], Config{Horizon: 20000, Seed: 4}, 9)
	})
	t.Run("degrade-factor-custom", func(t *testing.T) {
		assertBatchEqual(t, sets["heavy"], Config{
			Horizon: 20000, Policy: Degrade, DegradeFactor: 0.3,
			Exec: batchGoldenExec(t, sets["heavy"]), Seed: 5,
		}, 33)
	})
	t.Run("event-logging-delegates", func(t *testing.T) {
		assertBatchEqual(t, sets["heavy"], Config{
			Horizon: 20000, Exec: batchGoldenExec(t, sets["heavy"]),
			Seed: 6, MaxEvents: 1 << 10,
		}, 9)
	})
	t.Run("twenty-task-bench-config", func(t *testing.T) {
		ts, cfg := benchSet(t, 20)
		cfg.Jitter = nil // keep the fast path; jitter is covered above
		assertBatchEqual(t, ts, cfg, 17)
		cfg.Policy = Degrade
		assertBatchEqual(t, ts, cfg, 17)
	})
}

// TestBatchWidthInvariance pins the property the adaptive allocator and
// the CI checkpoint-identity check rely on: replication i depends only
// on (cfg, i) — never on the batch width, the worker count, or which
// range it was computed in.
func TestBatchWidthInvariance(t *testing.T) {
	ts := goldenSets(t)["heavy"]
	cfg := Config{Horizon: 20000, Exec: batchGoldenExec(t, ts), Seed: 42}
	ctx := context.Background()
	const runs = 37
	want, err := ReplicateBatchCtx(ctx, ts, cfg, runs, 1, runs)
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{1, 2, 3, 5, 8, 16, 64} {
		for _, workers := range []int{1, 3} {
			got, err := ReplicateBatchCtx(ctx, ts, cfg, runs, workers, batch)
			if err != nil {
				t.Fatalf("batch=%d workers=%d: %v", batch, workers, err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("batch=%d workers=%d run=%d diverges", batch, workers, i)
				}
			}
		}
	}
	// Default width (batch ≤ 0) is the same computation.
	got, err := ReplicateBatchCtx(ctx, ts, cfg, runs, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("default width run=%d diverges", i)
		}
	}
}

// TestReplicateInto pins the fold contract: run order, the global run
// index space (an extension [n, m) reproduces the same replications a
// full [0, m) pass computes), and range validation.
func TestReplicateInto(t *testing.T) {
	ts := goldenSets(t)["heavy"]
	cfg := Config{Horizon: 20000, Exec: batchGoldenExec(t, ts), Seed: 7}
	ctx := context.Background()
	want, err := ReplicateCtx(ctx, ts, cfg, 24, 4)
	if err != nil {
		t.Fatal(err)
	}

	next := 5
	err = ReplicateInto(ctx, ts, cfg, 5, 24, 3, 7, func(run int, m Metrics) {
		if run != next {
			t.Fatalf("fold out of order: got run %d, want %d", run, next)
		}
		next++
		if m != want[run] {
			t.Fatalf("run %d diverges:\n got  %+v\n want %+v", run, m, want[run])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if next != 24 {
		t.Fatalf("fold stopped at run %d, want 24", next)
	}

	if err := ReplicateInto(ctx, ts, cfg, 3, 3, 1, 1, func(int, Metrics) {
		t.Fatal("fold called on empty range")
	}); err != nil {
		t.Fatalf("empty range: %v", err)
	}
	if err := ReplicateInto(ctx, ts, cfg, -1, 3, 1, 1, nil); err == nil {
		t.Fatal("negative from accepted")
	}
	if err := ReplicateInto(ctx, ts, cfg, 5, 4, 1, 1, nil); err == nil {
		t.Fatal("inverted range accepted")
	}
}
