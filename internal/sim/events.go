package sim

import "fmt"

// EventKind classifies schedule events.
type EventKind int

const (
	// EvRelease marks a job release.
	EvRelease EventKind = iota
	// EvComplete marks a job completion (before its deadline or not —
	// see EvMiss).
	EvComplete
	// EvMiss marks a completion past the absolute deadline.
	EvMiss
	// EvDrop marks an LC job discarded by a mode switch or released into
	// HI mode under DropAll.
	EvDrop
	// EvSwitchHI marks a LO→HI transition.
	EvSwitchHI
	// EvSwitchLO marks the return to LO mode.
	EvSwitchLO
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvRelease:
		return "release"
	case EvComplete:
		return "complete"
	case EvMiss:
		return "miss"
	case EvDrop:
		return "drop"
	case EvSwitchHI:
		return "switch->HI"
	case EvSwitchLO:
		return "switch->LO"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one timestamped schedule event. TaskID is 0 for mode switches.
type Event struct {
	Time   float64
	Kind   EventKind
	TaskID int
}

// String renders "t=... kind task=...".
func (e Event) String() string {
	if e.TaskID == 0 {
		return fmt.Sprintf("t=%-10.3f %s", e.Time, e.Kind)
	}
	return fmt.Sprintf("t=%-10.3f %s task=%d", e.Time, e.Kind, e.TaskID)
}

// record appends an event when logging is enabled and under the cap.
func (s *Simulator) record(t float64, k EventKind, taskID int) {
	if s.cfg.MaxEvents <= 0 || len(s.events) >= s.cfg.MaxEvents {
		return
	}
	s.events = append(s.events, Event{Time: t, Kind: k, TaskID: taskID})
}

// Events returns the events recorded during the last Run (nil when
// Config.MaxEvents was 0).
func (s *Simulator) Events() []Event {
	return append([]Event(nil), s.events...)
}
