package sim

import (
	"fmt"
	"math/rand"

	"chebymc/internal/dist"
	"chebymc/internal/mc"
)

// Protocol selects the mode-switch protocol: what an HC overrun degrades
// and when the degradation ends. The zero value is SystemLevel, the
// paper's Section III model, and a zero-value Config is bit-identical to
// the pre-protocol simulator (pinned by golden_test.go).
type Protocol int

const (
	// SystemLevel is the paper's protocol: one HC overrun flips the whole
	// system to HI mode, every LC task is dropped or degraded, and the
	// system returns to LO once no ready HC job remains.
	SystemLevel Protocol = iota
	// TaskLevel is the Boudjadar-style protocol: an overrun of HC task i
	// degrades only i's interference set — the LC tasks whose period is at
	// least T_i, the ones an overrunning job of i can actually delay past
	// their deadlines. Task i's own pending jobs recover their real
	// deadlines; the group returns to LO independently at its own idle
	// instant (no ready job of task i left). Other HC tasks keep their
	// virtual deadlines and may open their own groups concurrently.
	TaskLevel
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case SystemLevel:
		return "system-level"
	case TaskLevel:
		return "task-level"
	}
	return fmt.Sprintf("Protocol(%d)", int(p))
}

// ProtocolByName resolves the flag/request spelling of a protocol. The
// empty string is the zero value, SystemLevel.
func ProtocolByName(name string) (Protocol, error) {
	switch name {
	case "", "system-level", "system":
		return SystemLevel, nil
	case "task-level", "task":
		return TaskLevel, nil
	}
	return 0, fmt.Errorf("sim: unknown protocol %q (want system-level or task-level)", name)
}

// ReleaseModel generates the separation between successive releases of
// one task. A nil model (the Config zero value) and Periodic both mean
// strictly periodic releases and draw nothing from the RNG stream, so a
// zero-value Config keeps every frozen golden bit-identical. Models that
// sample must draw from r exactly once per Gap call (or not at all) so
// replications stay deterministic for a given seed.
type ReleaseModel interface {
	// Gap returns the separation between a release of t and the next.
	// Implementations must return a value ≥ t.Period: the analysis treats
	// the period as the minimum inter-arrival time.
	Gap(r *rand.Rand, t *mc.Task) float64
	// String names the model for flags, digests and tables.
	String() string
}

// Periodic releases every task strictly at its period — the paper's
// model and the zero value of the release-model axis.
type Periodic struct{}

// Gap implements ReleaseModel: always exactly the period, no RNG draw.
func (Periodic) Gap(_ *rand.Rand, t *mc.Task) float64 { return t.Period }

// String implements fmt.Stringer.
func (Periodic) String() string { return "periodic" }

// Sporadic spaces successive releases by MinSep·T plus a non-negative
// draw from Jitterer: the period becomes a minimum inter-arrival time,
// the sporadic task model. Draws come from the per-run RNG stream, one
// per release, before that release's execution-time draw.
type Sporadic struct {
	// MinSep scales the period floor; 0 defaults to 1. Values below 1
	// are rejected by New — inter-arrival times must stay ≥ T.
	MinSep float64
	// Jitterer adds max(0, draw) on top of the floor; nil adds nothing.
	Jitterer dist.Dist
}

// Gap implements ReleaseModel.
func (s Sporadic) Gap(r *rand.Rand, t *mc.Task) float64 {
	f := s.MinSep
	if f == 0 {
		f = 1
	}
	gap := f * t.Period
	if s.Jitterer != nil {
		if j := s.Jitterer.Sample(r); j > 0 {
			gap += j
		}
	}
	return gap
}

// String implements fmt.Stringer.
func (s Sporadic) String() string { return "sporadic" }

// releaseIsPeriodic reports whether m never deviates from the period —
// the class the batch-lockstep engine's shared release skeleton models.
func releaseIsPeriodic(m ReleaseModel) bool {
	if m == nil {
		return true
	}
	_, ok := m.(Periodic)
	return ok
}

// DefaultSporadicJitter is the inter-arrival slack span the spelling
// "sporadic" selects (ReleaseByName): on top of the period floor, each
// gap adds a uniform draw from [0, DefaultSporadicJitter]. Sized for
// taskgen's default 100–900 period range — 3–25% mean slack.
const DefaultSporadicJitter = 50.0

// DefaultSporadic is the sporadic model the spelling "sporadic"
// resolves to: inter-arrival T + U(0, DefaultSporadicJitter).
func DefaultSporadic() Sporadic {
	u, err := dist.NewUniform(0, DefaultSporadicJitter)
	if err != nil {
		panic(err) // static bounds; cannot fail
	}
	return Sporadic{Jitterer: u}
}

// ReleaseByName resolves the flag/request spelling of a release model.
// The empty string is the zero value, strictly periodic releases.
func ReleaseByName(name string) (ReleaseModel, error) {
	switch name {
	case "", "periodic":
		return Periodic{}, nil
	case "sporadic":
		return DefaultSporadic(), nil
	}
	return nil, fmt.Errorf("sim: unknown release model %q (want periodic or sporadic)", name)
}

// DefaultHorizon is the simulated span Defaults picks: long enough that
// steady-state rates dominate start-up transients for period ranges in
// the tens to hundreds.
const DefaultHorizon = 20000.0

// Defaults returns a fully-populated Config with every axis at its
// documented default: the paper's system-level protocol, strictly
// periodic releases, the DropAll policy and ρ = 0.5 (the Liu value,
// used only under Degrade). Mirrors ga.Defaults(): construction sites
// override what they mean to change instead of relying on zero values.
// Defaults() with no overrides is behaviourally identical to a zero
// Config with Horizon set — the explicit fields are the zero values'
// documented meanings.
func Defaults() Config {
	return Config{
		Horizon:       DefaultHorizon,
		Policy:        DropAll,
		DegradeFactor: 0.5,
		Protocol:      SystemLevel,
		Release:       Periodic{},
	}
}
