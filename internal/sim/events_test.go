package sim

import (
	"strings"
	"testing"
)

func TestEventsDisabledByDefault(t *testing.T) {
	ts := mkSet(t)
	s, err := New(ts, Config{Horizon: 1000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if got := s.Events(); got != nil {
		t.Fatalf("events recorded without MaxEvents: %d", len(got))
	}
}

func TestEventsRecorded(t *testing.T) {
	ts := mkSet(t)
	cfg := overrunConfig(t, ts, DropAll)
	cfg.MaxEvents = 10000
	s, err := New(ts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := s.Run()
	ev := s.Events()
	if len(ev) == 0 {
		t.Fatal("no events recorded")
	}
	counts := map[EventKind]int{}
	prev := -1.0
	for _, e := range ev {
		counts[e.Kind]++
		if e.Time < prev {
			t.Fatalf("events out of order at %v", e)
		}
		prev = e.Time
	}
	// The cap truncates the tail, so counts are lower bounds; the
	// switch events must appear and interleave.
	if counts[EvSwitchHI] == 0 || counts[EvRelease] == 0 || counts[EvComplete] == 0 {
		t.Fatalf("missing event kinds: %v", counts)
	}
	if m.ModeSwitches > 0 && counts[EvSwitchHI] == 0 {
		t.Error("switches not logged")
	}
	// Switch events carry no task.
	for _, e := range ev {
		if (e.Kind == EvSwitchHI || e.Kind == EvSwitchLO) && e.TaskID != 0 {
			t.Fatalf("switch event with task id: %v", e)
		}
	}
}

func TestEventsCapRespected(t *testing.T) {
	ts := mkSet(t)
	cfg := overrunConfig(t, ts, DropAll)
	cfg.MaxEvents = 25
	s, err := New(ts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if got := len(s.Events()); got != 25 {
		t.Fatalf("events = %d, want exactly the cap 25", got)
	}
}

func TestEventStrings(t *testing.T) {
	kinds := []EventKind{EvRelease, EvComplete, EvMiss, EvDrop, EvSwitchHI, EvSwitchLO, EventKind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("empty string for kind %d", int(k))
		}
	}
	e := Event{Time: 1.5, Kind: EvRelease, TaskID: 3}
	if !strings.Contains(e.String(), "task=3") {
		t.Errorf("event string %q", e.String())
	}
	sw := Event{Time: 2, Kind: EvSwitchHI}
	if strings.Contains(sw.String(), "task=") {
		t.Errorf("switch event string %q must omit task", sw.String())
	}
}

func TestEventsCopiedOut(t *testing.T) {
	ts := mkSet(t)
	cfg := Config{Horizon: 500, Seed: 1, MaxEvents: 100}
	s, err := New(ts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	ev := s.Events()
	if len(ev) == 0 {
		t.Fatal("no events")
	}
	ev[0].TaskID = 12345
	if s.Events()[0].TaskID == 12345 {
		t.Error("Events must return a copy")
	}
}
