package sim

import (
	"context"
	"errors"
	"fmt"

	"chebymc/internal/mc"
	"chebymc/internal/par"
	"chebymc/internal/rng"
)

// SystemMetrics aggregates one replication of a partitioned system: each
// core ran its own independent DES over the same horizon, so one core's
// mode switch leaves every other core in LO mode — the semantic win of
// partitioned EDF-VD the accessors below expose.
type SystemMetrics struct {
	// Cores holds per-core metrics in core order. Empty cores (a nil
	// task set in the partition) carry a zero Metrics.
	Cores []Metrics
}

// ModeSwitches sums the LO→HI transitions across cores.
func (m SystemMetrics) ModeSwitches() int {
	n := 0
	for _, c := range m.Cores {
		n += c.ModeSwitches
	}
	return n
}

// AnySwitch reports whether any core switched — the event the system
// P_sys^MS bound (Eq. 10 composed across cores) speaks about.
func (m SystemMetrics) AnySwitch() bool {
	for _, c := range m.Cores {
		if c.ModeSwitches > 0 {
			return true
		}
	}
	return false
}

// HCMisses sums HC deadline misses across cores.
func (m SystemMetrics) HCMisses() int {
	n := 0
	for _, c := range m.Cores {
		n += c.HCMisses
	}
	return n
}

// LCServiceRate reports the system LC quality of service: completed LC
// jobs over released LC jobs, summed across cores. Under partitioning a
// switch degrades only its own core's LC tasks, so this stays above the
// single-core rate for the same workload.
func (m SystemMetrics) LCServiceRate() float64 {
	released, completed := 0, 0
	for _, c := range m.Cores {
		released += c.LCReleased
		completed += c.LCCompleted
	}
	if released == 0 {
		return 0
	}
	return float64(completed) / float64(released)
}

// Utilisation reports total busy time over total core time — the mean
// per-core utilisation of the occupied cores.
func (m SystemMetrics) Utilisation() float64 {
	busy, span := 0.0, 0.0
	for _, c := range m.Cores {
		busy += c.BusyTime
		span += c.Time
	}
	if span == 0 {
		return 0
	}
	return busy / span
}

// ReplicateSystem is ReplicateSystemCtx with context.Background().
func ReplicateSystem(sets []*mc.TaskSet, cfg Config, runs, workers int) ([]SystemMetrics, error) {
	return ReplicateSystemCtx(context.Background(), sets, cfg, runs, workers)
}

// ReplicateSystemCtx is the multicore replication mode: sets holds one
// task set per core (nil entries are idle cores), and each replication
// runs every core's DES independently under cfg. Core c of run i seeds
// from rng.Derive(cfg.Seed, i, c), and runs fan out over par.MapCtx, so
// results are in run order and bit-identical for every worker count.
// cfg.Exec and cfg.Jitter are keyed by task ID and therefore shared
// across cores; cfg.X = 0 resolves each core's virtual-deadline factor
// from its own EDF-VD analysis (LC-only cores run plain EDF at X = 1).
func ReplicateSystemCtx(ctx context.Context, sets []*mc.TaskSet, cfg Config, runs, workers int) ([]SystemMetrics, error) {
	if runs < 1 {
		return nil, fmt.Errorf("sim: need runs ≥ 1, got %d", runs)
	}
	if len(sets) == 0 {
		return nil, errors.New("sim: system replication needs at least one core")
	}
	// Resolve each occupied core's configuration once (EDF-VD factor,
	// defaults) so replications only reseed.
	bases := make([]*Config, len(sets))
	occupied := 0
	for c, set := range sets {
		if set == nil {
			continue
		}
		ccfg := cfg
		if ccfg.X == 0 && set.NumHC() == 0 {
			// An LC-only core runs plain EDF: the EDF-VD analysis yields
			// X = 0 without HC load, so pin the factor at 1 (no deadline
			// shrinking) instead of failing New's validation.
			ccfg.X = 1
		}
		probe, err := New(set, ccfg)
		if err != nil {
			return nil, fmt.Errorf("sim: core %d: %w", c, err)
		}
		base := probe.cfg
		bases[c] = &base
		occupied++
	}
	if occupied == 0 {
		return nil, errors.New("sim: system replication needs at least one occupied core")
	}
	out, err := par.MapCtx(ctx, workers, runs, func(i int) (SystemMetrics, error) {
		sm := SystemMetrics{Cores: make([]Metrics, len(sets))}
		for c, base := range bases {
			if base == nil {
				continue
			}
			cc := *base
			cc.Seed = rng.Derive(cfg.Seed, int64(i), int64(c))
			s, err := New(sets[c], cc)
			if err != nil {
				return SystemMetrics{}, fmt.Errorf("sim: core %d: %w", c, err)
			}
			sm.Cores[c] = s.Run()
		}
		return sm, nil
	})
	if err != nil {
		return nil, err
	}
	obsSystemRuns.Add(uint64(len(out)))
	return out, nil
}

// SystemSummary aggregates replicated system metrics — the form the
// multicore experiment and mcopt report.
type SystemSummary struct {
	// Runs is the replication count.
	Runs int
	// SwitchProb is the fraction of runs where any core switched — the
	// empirical counterpart of the composed Eq. 10 bound P_sys^MS.
	SwitchProb float64
	// MeanModeSwitches averages the summed LO→HI transition counts.
	MeanModeSwitches float64
	// MeanLCServiceRate and MeanUtilisation average the per-run system
	// rates.
	MeanLCServiceRate, MeanUtilisation float64
	// TotalHCMisses sums HC deadline misses across all runs and cores.
	TotalHCMisses int
}

// SummarizeSystem reduces replicated system metrics to their means.
func SummarizeSystem(ms []SystemMetrics) SystemSummary {
	sum := SystemSummary{Runs: len(ms)}
	if len(ms) == 0 {
		return sum
	}
	for _, m := range ms {
		if m.AnySwitch() {
			sum.SwitchProb++
		}
		sum.MeanModeSwitches += float64(m.ModeSwitches())
		sum.MeanLCServiceRate += m.LCServiceRate()
		sum.MeanUtilisation += m.Utilisation()
		sum.TotalHCMisses += m.HCMisses()
	}
	n := float64(len(ms))
	sum.SwitchProb /= n
	sum.MeanModeSwitches /= n
	sum.MeanLCServiceRate /= n
	sum.MeanUtilisation /= n
	return sum
}
