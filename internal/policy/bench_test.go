package policy

import (
	"math"
	"math/rand"
	"testing"

	"chebymc/internal/anneal"
	"chebymc/internal/core"
	"chebymc/internal/ga"
	"chebymc/internal/mc"
	"chebymc/internal/taskgen"
)

// Optimizer ablation (DESIGN.md §5): the paper's GA against simulated
// annealing, uniform grid search and pure random search on the actual
// Eq. 13 objective. Each benchmark reports the achieved objective through
// the `objective` metric alongside the runtime cost.

func eq13Problem(b *testing.B, seed int64) (ga.Problem, *mc.TaskSet) {
	b.Helper()
	r := rand.New(rand.NewSource(seed))
	ts, err := taskgen.HCOnly(r, taskgen.Config{}, 0.7)
	if err != nil {
		b.Fatal(err)
	}
	hcs := ts.ByCrit(mc.HC)
	bounds := make([]ga.Bound, len(hcs))
	for i, task := range hcs {
		hi := math.Min(core.NMax(task), 50)
		bounds[i] = ga.Bound{Lo: 0, Hi: hi}
	}
	fitness := func(g []float64) float64 {
		a, err := core.Apply(ts, g)
		if err != nil {
			return math.Inf(-1)
		}
		return a.Objective
	}
	return ga.Problem{Bounds: bounds, Fitness: fitness}, ts
}

func BenchmarkOptimizerGA(b *testing.B) {
	total := 0.0
	for i := 0; i < b.N; i++ {
		p, _ := eq13Problem(b, int64(i+1))
		cfg := ga.Defaults()
		cfg.Seed = int64(i + 1)
		cfg.PopSize = 40
		cfg.Generations = 60
		res, err := ga.Run(p, cfg)
		if err != nil {
			b.Fatal(err)
		}
		total += res.BestFitness
	}
	b.ReportMetric(total/float64(b.N), "objective")
}

func BenchmarkOptimizerAnneal(b *testing.B) {
	total := 0.0
	for i := 0; i < b.N; i++ {
		p, _ := eq13Problem(b, int64(i+1))
		res, err := anneal.Run(p, anneal.Config{Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		total += res.BestFitness
	}
	b.ReportMetric(total/float64(b.N), "objective")
}

func BenchmarkOptimizerUniformGrid(b *testing.B) {
	// The Fig. 2-style fallback: one shared n swept over a grid.
	total := 0.0
	for i := 0; i < b.N; i++ {
		_, ts := eq13Problem(b, int64(i+1))
		best := math.Inf(-1)
		for n := 0.0; n <= 50; n++ {
			ns, err := core.ClampNS(ts, uniformVec(ts.NumHC(), n))
			if err != nil {
				b.Fatal(err)
			}
			a, err := core.Apply(ts, ns)
			if err != nil {
				b.Fatal(err)
			}
			if a.Objective > best {
				best = a.Objective
			}
		}
		total += best
	}
	b.ReportMetric(total/float64(b.N), "objective")
}

func BenchmarkOptimizerRandomSearch(b *testing.B) {
	total := 0.0
	for i := 0; i < b.N; i++ {
		p, _ := eq13Problem(b, int64(i+1))
		r := rand.New(rand.NewSource(int64(i + 1)))
		best := math.Inf(-1)
		const evals = 2400 // match the GA's budget (40 × 60)
		g := make([]float64, len(p.Bounds))
		for e := 0; e < evals; e++ {
			for k, bd := range p.Bounds {
				g[k] = bd.Lo + r.Float64()*(bd.Hi-bd.Lo)
			}
			if v := p.Fitness(g); v > best {
				best = v
			}
		}
		total += best
	}
	b.ReportMetric(total/float64(b.N), "objective")
}

func uniformVec(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}
