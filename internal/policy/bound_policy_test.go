package policy

import (
	"math"
	"math/rand"
	"testing"

	"chebymc/internal/core"
	"chebymc/internal/stats"
)

// TestPolicyBoundOption pins the Bound threading: the same n vector must
// be scored under the selected inequality (PMS = SystemMSProbBound), the
// default must stay the historical Cantelli path bit for bit, and a
// non-default bound must be visible in the policy name.
func TestPolicyBoundOption(t *testing.T) {
	ts := testSet(t)
	vp := stats.VysochanskijPetunin{}

	def, err := ChebyshevUniform{N: 3}.Assign(ts, nil)
	if err != nil {
		t.Fatal(err)
	}
	under, err := ChebyshevUniform{N: 3, Bound: vp}.Assign(ts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(def.PMS) != math.Float64bits(core.SystemMSProb(def.NS)) {
		t.Errorf("default PMS %g is not the Cantelli score", def.PMS)
	}
	if math.Float64bits(under.PMS) != math.Float64bits(core.SystemMSProbBound(vp, under.NS)) {
		t.Errorf("VP PMS %g is not the VP score", under.PMS)
	}
	if under.PMS >= def.PMS {
		t.Errorf("VP PMS %g not tighter than Cantelli %g at the same n", under.PMS, def.PMS)
	}
	if got := (ChebyshevUniform{N: 3, Bound: vp}).Name(); got != "chebyshev-n=3[vp]" {
		t.Errorf("Name = %q", got)
	}
	if got := (ChebyshevUniform{N: 3}).Name(); got != "chebyshev-n=3" {
		t.Errorf("default Name = %q", got)
	}
}

// TestChebyshevGABoundOption: the GA under a non-default bound is
// deterministic per seed, reports a PMS consistent with that bound, and
// under VP never does worse on the Eq. 13 objective than the Cantelli
// run with the same seed (every candidate scores ≥ its Cantelli value).
func TestChebyshevGABoundOption(t *testing.T) {
	ts := testSet(t)
	vp := stats.VysochanskijPetunin{}
	ga := ChebyshevGA{Bound: vp}
	if got := ga.Name(); got != "chebyshev-ga[vp]" {
		t.Errorf("Name = %q", got)
	}

	a1, err := ga.Assign(ts, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := ga.Assign(ts, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a1.NS {
		if a1.NS[i] != a2.NS[i] {
			t.Fatalf("non-deterministic: NS[%d] %g vs %g", i, a1.NS[i], a2.NS[i])
		}
	}
	if math.Float64bits(a1.PMS) != math.Float64bits(core.SystemMSProbBound(vp, a1.NS)) {
		t.Errorf("PMS %g inconsistent with the VP bound", a1.PMS)
	}

	can, err := ChebyshevGA{}.Assign(ts, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if a1.Objective < can.Objective {
		t.Errorf("VP objective %g below Cantelli %g", a1.Objective, can.Objective)
	}
}
