package policy

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"chebymc/internal/core"
	"chebymc/internal/edfvd"
	"chebymc/internal/ga"
	"chebymc/internal/mc"
	"chebymc/internal/taskgen"
)

func testSet(t *testing.T) *mc.TaskSet {
	t.Helper()
	r := rand.New(rand.NewSource(1))
	ts, err := taskgen.HCOnly(r, taskgen.Config{}, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

func TestChebyshevUniform(t *testing.T) {
	ts := testSet(t)
	a, err := ChebyshevUniform{N: 5}.Assign(ts, nil)
	if err != nil {
		t.Fatal(err)
	}
	hcs := a.TaskSet.ByCrit(mc.HC)
	for i, task := range hcs {
		want := core.WCETOpt(task.Profile, a.NS[i])
		if math.Abs(task.CLO-want) > 1e-9 {
			t.Errorf("task %d: CLO %g, want %g", task.ID, task.CLO, want)
		}
		if task.CLO > task.CHI+1e-9 {
			t.Errorf("task %d violates Eq. 9", task.ID)
		}
	}
	if got := (ChebyshevUniform{N: 5}).Name(); !strings.Contains(got, "5") {
		t.Errorf("Name = %q", got)
	}
}

func TestChebyshevUniformClampsToNMax(t *testing.T) {
	// A task whose NMax is tiny must be clamped, not rejected.
	ts, err := mc.NewTaskSet([]mc.Task{
		{ID: 1, Crit: mc.HC, CLO: 50, CHI: 50, Period: 100,
			Profile: mc.Profile{ACET: 45, Sigma: 10}}, // NMax = 0.5
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := ChebyshevUniform{N: 20}.Assign(ts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.NS[0] != 0.5 {
		t.Errorf("n = %g, want clamped 0.5", a.NS[0])
	}
}

func TestLambdaFixed(t *testing.T) {
	ts := testSet(t)
	a, err := LambdaFixed{Lambda: 0.25}.Assign(ts, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range a.TaskSet.ByCrit(mc.HC) {
		if math.Abs(task.CLO-0.25*task.CHI) > 1e-9 {
			t.Errorf("task %d: CLO %g, want %g", task.ID, task.CLO, 0.25*task.CHI)
		}
	}
	if _, err := (LambdaFixed{Lambda: 0}).Assign(ts, nil); err == nil {
		t.Error("λ = 0 must error")
	}
	if _, err := (LambdaFixed{Lambda: 1.5}).Assign(ts, nil); err == nil {
		t.Error("λ > 1 must error")
	}
}

func TestLambdaRange(t *testing.T) {
	ts := testSet(t)
	r := rand.New(rand.NewSource(2))
	a, err := LambdaRange{Lo: 0.25, Hi: 1}.Assign(ts, r)
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range a.TaskSet.ByCrit(mc.HC) {
		lambda := task.CLO / task.CHI
		if lambda < 0.25-1e-9 || lambda > 1+1e-9 {
			t.Errorf("task %d: λ %g out of [0.25, 1]", task.ID, lambda)
		}
	}
	if _, err := (LambdaRange{Lo: 0, Hi: 1}).Assign(ts, r); err == nil {
		t.Error("Lo = 0 must error")
	}
	if _, err := (LambdaRange{Lo: 0.5, Hi: 0.2}).Assign(ts, r); err == nil {
		t.Error("Lo > Hi must error")
	}
}

func TestACETOnlySwitchesConstantly(t *testing.T) {
	ts := testSet(t)
	a, err := ACETOnly{}.Assign(ts, nil)
	if err != nil {
		t.Fatal(err)
	}
	// n = 0 everywhere: the per-task bound is vacuous, so the system
	// bound must be 1 (some HC task may always overrun).
	if a.PMS < 0.99 {
		t.Errorf("PMS = %g, want ≈ 1 at n = 0", a.PMS)
	}
	if a.Objective > 0.01 {
		t.Errorf("objective = %g, want ≈ 0", a.Objective)
	}
}

func TestChebyshevGABeatsUniformAndBaselines(t *testing.T) {
	ts := testSet(t)
	r := rand.New(rand.NewSource(3))
	gaPol := ChebyshevGA{Config: ga.Config{PopSize: 40, Generations: 60}}
	best, err := gaPol.Assign(ts, r)
	if err != nil {
		t.Fatal(err)
	}
	// The GA must at least match the best uniform n on the objective.
	for _, n := range []float64{2, 5, 10, 15, 20, 30} {
		u, err := ChebyshevUniform{N: n}.Assign(ts, nil)
		if err != nil {
			t.Fatal(err)
		}
		if best.Objective < u.Objective-0.02 {
			t.Errorf("GA objective %g below uniform n=%g objective %g",
				best.Objective, n, u.Objective)
		}
	}
	// And the λ baselines (the paper's Fig. 5 comparison).
	for _, lam := range []float64{1.0 / 32, 1.0 / 16, 1.0 / 4} {
		b, err := LambdaFixed{Lambda: lam}.Assign(ts, nil)
		if err != nil {
			t.Fatal(err)
		}
		if best.Objective < b.Objective-0.02 {
			t.Errorf("GA objective %g below λ=%g objective %g",
				best.Objective, lam, b.Objective)
		}
	}
}

func TestChebyshevGADeterministicPerSeed(t *testing.T) {
	ts := testSet(t)
	p := ChebyshevGA{Config: ga.Config{PopSize: 20, Generations: 20}}
	a1, err := p.Assign(ts, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := p.Assign(ts, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if a1.Objective != a2.Objective {
		t.Errorf("same seed, different objective: %g vs %g", a1.Objective, a2.Objective)
	}
}

func TestChebyshevGARequireLC(t *testing.T) {
	// A mixed set with a concrete LC load: RequireLC must produce an
	// assignment that actually passes Eq. 8.
	r := rand.New(rand.NewSource(4))
	ts, err := taskgen.Mixed(r, taskgen.Config{}, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if ts.NumHC() == 0 || ts.NumLC() == 0 {
		t.Skip("degenerate draw")
	}
	p := ChebyshevGA{Config: ga.Config{PopSize: 30, Generations: 40}, RequireLC: true}
	a, err := p.Assign(ts, r)
	if err != nil {
		t.Fatalf("no feasible assignment: %v", err)
	}
	if an := edfvd.Schedulable(a.TaskSet); !an.Schedulable {
		t.Errorf("RequireLC assignment not schedulable: %v", an)
	}
}

func TestPolicyNames(t *testing.T) {
	names := []string{
		ChebyshevUniform{N: 3}.Name(),
		ChebyshevGA{}.Name(),
		LambdaFixed{Lambda: 0.25}.Name(),
		LambdaRange{Lo: 0.25, Hi: 1}.Name(),
		ACETOnly{}.Name(),
	}
	seen := map[string]bool{}
	for _, n := range names {
		if n == "" {
			t.Error("empty policy name")
		}
		if seen[n] {
			t.Errorf("duplicate policy name %q", n)
		}
		seen[n] = true
	}
}

func TestAllPoliciesRespectEq9(t *testing.T) {
	ts := testSet(t)
	r := rand.New(rand.NewSource(5))
	pols := []Policy{
		ChebyshevUniform{N: 10},
		ChebyshevGA{Config: ga.Config{PopSize: 20, Generations: 15}},
		LambdaFixed{Lambda: 0.5},
		LambdaRange{Lo: 0.125, Hi: 1},
		ACETOnly{},
	}
	for _, p := range pols {
		a, err := p.Assign(ts, r)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		for _, task := range a.TaskSet.ByCrit(mc.HC) {
			if task.CLO > task.CHI+1e-9 {
				t.Errorf("%s: task %d violates Eq. 9", p.Name(), task.ID)
			}
			if task.CLO <= 0 {
				t.Errorf("%s: task %d has non-positive C^LO", p.Name(), task.ID)
			}
		}
	}
}
