package policy

// Golden-equivalence suite for the objective-engine rewiring of
// ChebyshevGA: the batched/incremental/memoised Eq. 13 evaluation must
// leave assignments byte-for-byte unchanged from the seed implementation
// (refChebyshevAssign below carries the pre-engine fitness path
// verbatim), for memoisation on and off and for Workers ∈ {1, 4}.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"chebymc/internal/core"
	"chebymc/internal/edfvd"
	"chebymc/internal/ga"
	"chebymc/internal/mc"
	"chebymc/internal/taskgen"
)

// refChebyshevAssign is the seed ChebyshevGA.Assign: per-genome
// core.Apply with an edfvd.Schedulable gate, frozen as the reference.
func refChebyshevAssign(p ChebyshevGA, ts *mc.TaskSet, r *rand.Rand) (core.Assignment, error) {
	hcs := ts.ByCrit(mc.HC)
	if len(hcs) == 0 {
		return core.Apply(ts, nil)
	}
	nCap := p.NCap
	if nCap == 0 {
		nCap = 50
	}
	bounds := make([]ga.Bound, len(hcs))
	for i, t := range hcs {
		hi := core.NMax(t)
		if hi < 0 {
			return core.Assignment{}, fmt.Errorf("policy: task %d: ACET exceeds WCET^pes", t.ID)
		}
		bounds[i] = ga.Bound{Lo: 0, Hi: math.Min(hi, nCap)}
	}
	fitness := func(g []float64) float64 {
		a, err := core.Apply(ts, g)
		if err != nil {
			return math.Inf(-1)
		}
		if p.RequireLC && !edfvd.Schedulable(a.TaskSet).Schedulable {
			return math.Inf(-1)
		}
		return a.Objective
	}
	cfg := fillGADefaults(p.Config)
	cfg.Seed = r.Int63()
	res, err := ga.Run(ga.Problem{Bounds: bounds, Fitness: fitness}, cfg)
	if err != nil {
		return core.Assignment{}, err
	}
	if math.IsInf(res.BestFitness, -1) {
		return core.Assignment{}, fmt.Errorf("policy: no feasible assignment found")
	}
	return core.Apply(ts, res.Best)
}

func assertAssignmentsEqual(t *testing.T, got, want core.Assignment) {
	t.Helper()
	if len(got.NS) != len(want.NS) {
		t.Fatalf("NS length %d, want %d", len(got.NS), len(want.NS))
	}
	for i := range got.NS {
		if got.NS[i] != want.NS[i] {
			t.Errorf("NS[%d] = %v, want %v", i, got.NS[i], want.NS[i])
		}
	}
	if got.PMS != want.PMS || got.MaxULCLO != want.MaxULCLO || got.Objective != want.Objective {
		t.Errorf("(PMS, maxU, obj) = (%v, %v, %v), want (%v, %v, %v)",
			got.PMS, got.MaxULCLO, got.Objective, want.PMS, want.MaxULCLO, want.Objective)
	}
	for i, task := range got.TaskSet.Tasks {
		if task.CLO != want.TaskSet.Tasks[i].CLO {
			t.Errorf("task %d: CLO = %v, want %v", task.ID, task.CLO, want.TaskSet.Tasks[i].CLO)
		}
	}
}

// TestChebyshevGAGoldenEngine sweeps task sets × RequireLC × memo ×
// workers and asserts each engine configuration reproduces the seed
// assignment exactly.
func TestChebyshevGAGoldenEngine(t *testing.T) {
	gen := rand.New(rand.NewSource(42))
	for set := 0; set < 6; set++ {
		var (
			ts  *mc.TaskSet
			err error
		)
		u := 0.4 + 0.1*float64(set)
		if set%2 == 0 {
			ts, err = taskgen.HCOnly(gen, taskgen.Config{}, u)
		} else {
			ts, err = taskgen.Mixed(gen, taskgen.Config{}, u)
		}
		if err != nil {
			t.Fatal(err)
		}
		if ts.NumHC() == 0 {
			continue
		}
		requireLC := set%2 == 1 && ts.NumLC() > 0
		base := ChebyshevGA{Config: ga.Config{PopSize: 20, Generations: 25}, RequireLC: requireLC}
		want, refErr := refChebyshevAssign(base, ts, rand.New(rand.NewSource(int64(set+1))))
		for _, noMemo := range []bool{false, true} {
			for _, workers := range []int{1, 4} {
				name := fmt.Sprintf("set=%d/requireLC=%v/memo=%v/workers=%d", set, requireLC, !noMemo, workers)
				t.Run(name, func(t *testing.T) {
					p := base
					p.NoMemo = noMemo
					p.Config.Workers = workers
					got, err := p.Assign(ts, rand.New(rand.NewSource(int64(set+1))))
					if refErr != nil {
						if err == nil {
							t.Fatalf("reference errored (%v) but engine succeeded", refErr)
						}
						return
					}
					if err != nil {
						t.Fatal(err)
					}
					assertAssignmentsEqual(t, got, want)
				})
			}
		}
	}
}

// TestChebyshevGAGoldenEnginePaperConfig pins the paper's exact GA
// parameters (the Fig. 4/5 sweep configuration) on one task set.
func TestChebyshevGAGoldenEnginePaperConfig(t *testing.T) {
	gen := rand.New(rand.NewSource(99))
	ts, err := taskgen.HCOnly(gen, taskgen.Config{}, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	base := ChebyshevGA{Config: ga.Config{PopSize: 40, Generations: 60}}
	want, err := refChebyshevAssign(base, ts, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	got, err := base.Assign(ts, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	assertAssignmentsEqual(t, got, want)
}
