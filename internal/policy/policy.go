// Package policy collects the WCET^opt assignment policies the paper
// compares in Section V-C: the proposed Chebyshev scheme with a uniform n
// (Figs. 2–3), the proposed scheme with per-task n_i found by the genetic
// algorithm (Figs. 4–5), and the state-of-the-art λ-fraction baselines
// that set WCET^opt as a share of WCET^pes (Baruah [1], Liu [9], Guo [4]).
package policy

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"chebymc/internal/core"
	"chebymc/internal/ga"
	"chebymc/internal/mc"
	"chebymc/internal/objective"
	"chebymc/internal/stats"
)

// Policy assigns optimistic WCETs to the HC tasks of a task set. The
// *rand.Rand parameterises stochastic policies (per-task λ ranges, GA);
// deterministic policies ignore it.
type Policy interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Assign produces the Assignment for ts.
	Assign(ts *mc.TaskSet, r *rand.Rand) (core.Assignment, error)
}

// CtxPolicy is implemented by policies whose Assign can take long enough
// to matter for cancellation (today: the GA search). AssignCtx is Assign
// with cooperative cancellation; an uncancelled call is bit-identical.
type CtxPolicy interface {
	Policy
	// AssignCtx is Assign observing ctx.
	AssignCtx(ctx context.Context, ts *mc.TaskSet, r *rand.Rand) (core.Assignment, error)
}

// AssignCtx runs p.Assign under ctx: policies implementing CtxPolicy are
// cancellable mid-search, instant policies are gated by one up-front ctx
// check. This is the entry point long-running drivers (mcserve) use so a
// client disconnect or deadline stops the GA instead of burning a core.
func AssignCtx(ctx context.Context, p Policy, ts *mc.TaskSet, r *rand.Rand) (core.Assignment, error) {
	if cp, ok := p.(CtxPolicy); ok {
		return cp.AssignCtx(ctx, ts, r)
	}
	if err := ctx.Err(); err != nil {
		return core.Assignment{}, err
	}
	return p.Assign(ts, r)
}

// ChebyshevUniform applies Eq. 6 with a single n for every HC task,
// clamped per task to the Eq. 9 maximum — the configuration of the uniform
// sweeps in Figs. 2 and 3.
type ChebyshevUniform struct {
	// N is the shared parameter.
	N float64
	// Bound selects the concentration inequality behind the Eq. 10
	// mode-switch probability; nil keeps the paper's Cantelli default
	// (and the historical output bit for bit).
	Bound stats.Bound
}

// Name implements Policy. A non-default bound is spelled out so
// experiment tables distinguish the engines.
func (p ChebyshevUniform) Name() string {
	return fmt.Sprintf("chebyshev-n=%g%s", p.N, boundSuffix(p.Bound))
}

// Assign implements Policy.
func (p ChebyshevUniform) Assign(ts *mc.TaskSet, _ *rand.Rand) (core.Assignment, error) {
	ns := make([]float64, ts.NumHC())
	for i := range ns {
		ns[i] = p.N
	}
	clamped, err := core.ClampNS(ts, ns)
	if err != nil {
		return core.Assignment{}, err
	}
	return core.ApplyBound(ts, clamped, boundOrDefault(p.Bound))
}

// boundOrDefault resolves a policy's optional bound field.
func boundOrDefault(b stats.Bound) stats.Bound {
	if b == nil {
		return core.DefaultBound()
	}
	return b
}

// boundSuffix renders the policy-name marker for a non-default bound.
// An explicit Cantelli is the default spelled out — no marker, so flag
// plumbing that always resolves its bound keeps the historical names.
func boundSuffix(b stats.Bound) string {
	if b == nil || b.Name() == stats.DefaultBoundName {
		return ""
	}
	return "[" + b.Name() + "]"
}

// ChebyshevGA searches per-task n_i with the paper's genetic algorithm,
// maximising the Eq. 13 objective subject to Eq. 9 (via gene bounds) — the
// proposed scheme of Figs. 4 and 5.
type ChebyshevGA struct {
	// Config tunes the GA. Zero fields are filled from ga.Defaults() —
	// the paper's parameters (two-point crossover 0.8, single-point
	// mutation 0.2, tournament 5) — so a partial Config overrides just
	// the named fields. Callers that need literal zeros (disabled
	// operators, no elitism) should run the search through ga.Run
	// directly, where every field is taken literally.
	Config ga.Config
	// NCap bounds the per-task search range [0, min(NMax, NCap)];
	// defaults to 50 when zero. Without a cap the bound-free tasks
	// (σ → 0) would make the search space needlessly wide.
	NCap float64
	// RequireLC, when true, makes assignments that cannot also schedule
	// the task set's *actual* LC load (Eq. 8 with the set's U^LO_LC)
	// infeasible — the acceptance-ratio configuration of Fig. 6.
	RequireLC bool
	// NoMemo disables the objective engine's genome-digest cache. The
	// search is bit-identical either way (the equivalence tests pin it);
	// this is a validation and debugging escape hatch, not a tuning knob.
	NoMemo bool
	// Bound selects the concentration inequality the objective engine
	// scores Eq. 10 with; nil keeps the paper's Cantelli default (and the
	// engine goldens bit-identical).
	Bound stats.Bound
}

// Name implements Policy.
func (p ChebyshevGA) Name() string { return "chebyshev-ga" + boundSuffix(p.Bound) }

// Assign implements Policy. Fitness evaluation runs on the incremental
// Eq. 13 engine (internal/objective): the per-task invariants are hoisted
// here, once, and the GA scores genomes without ever materialising an
// assignment — core.Apply runs exactly once, on the winner.
func (p ChebyshevGA) Assign(ts *mc.TaskSet, r *rand.Rand) (core.Assignment, error) {
	return p.AssignCtx(context.Background(), ts, r)
}

// AssignCtx implements CtxPolicy: the GA search checks ctx once per
// generation, so a cancelled request abandons the search within one
// generation's work instead of running all of them.
func (p ChebyshevGA) AssignCtx(ctx context.Context, ts *mc.TaskSet, r *rand.Rand) (core.Assignment, error) {
	hcs := ts.ByCrit(mc.HC)
	if len(hcs) == 0 {
		return core.Apply(ts, nil)
	}
	nCap := p.NCap
	if nCap == 0 {
		nCap = 50
	}
	bounds := make([]ga.Bound, len(hcs))
	for i, t := range hcs {
		hi := core.NMax(t)
		if hi < 0 {
			return core.Assignment{}, fmt.Errorf("policy: task %d: ACET exceeds WCET^pes", t.ID)
		}
		bounds[i] = ga.Bound{Lo: 0, Hi: math.Min(hi, nCap)}
	}
	eval, err := objective.New(ts, objective.Options{RequireLC: p.RequireLC, DisableMemo: p.NoMemo, Bound: p.Bound})
	if err != nil {
		return core.Assignment{}, err
	}
	cfg := fillGADefaults(p.Config)
	cfg.Seed = r.Int63()
	res, err := ga.RunCtx(ctx, ga.Problem{Bounds: bounds, Batch: eval}, cfg)
	if err != nil {
		return core.Assignment{}, err
	}
	if math.IsInf(res.BestFitness, -1) {
		return core.Assignment{}, fmt.Errorf("policy: no feasible assignment found")
	}
	return core.ApplyBound(ts, res.Best, boundOrDefault(p.Bound))
}

// fillGADefaults fills the zero fields of a partial GA config from
// ga.Defaults(). The policy layer keeps the merge so experiment configs
// can spell only the fields they tune (typically PopSize/Generations).
func fillGADefaults(cfg ga.Config) ga.Config {
	def := ga.Defaults()
	if cfg.PopSize == 0 {
		cfg.PopSize = def.PopSize
	}
	if cfg.Generations == 0 {
		cfg.Generations = def.Generations
	}
	if cfg.CrossProb == 0 {
		cfg.CrossProb = def.CrossProb
	}
	if cfg.MutProb == 0 {
		cfg.MutProb = def.MutProb
	}
	if cfg.TournamentK == 0 {
		cfg.TournamentK = def.TournamentK
	}
	if cfg.Elites == 0 {
		cfg.Elites = def.Elites
	}
	return cfg
}

// LambdaFixed is the state-of-the-art baseline with a fixed fraction:
// C^LO = λ·C^HI for every HC task (Guo [4] and Gu [12] use
// λ ∈ {1/16, 1/8, 1/4, 1/2, 1}).
type LambdaFixed struct {
	// Lambda is the fraction of WCET^pes, in (0, 1].
	Lambda float64
	// Bound selects the inequality the assignment's P_sys^MS is reported
	// under; nil keeps the Cantelli default. λ baselines pick budgets
	// without consulting the bound — only the reported metrics change —
	// but comparisons against bound-aware policies must score every
	// line-up member under the same inequality.
	Bound stats.Bound
}

// Name implements Policy.
func (p LambdaFixed) Name() string {
	return fmt.Sprintf("lambda=1/%g%s", 1/p.Lambda, boundSuffix(p.Bound))
}

// Assign implements Policy.
func (p LambdaFixed) Assign(ts *mc.TaskSet, _ *rand.Rand) (core.Assignment, error) {
	if p.Lambda <= 0 || p.Lambda > 1 {
		return core.Assignment{}, fmt.Errorf("policy: λ %g out of (0, 1]", p.Lambda)
	}
	hcs := ts.ByCrit(mc.HC)
	clo := make([]float64, len(hcs))
	for i, t := range hcs {
		clo[i] = p.Lambda * t.CHI
	}
	return core.FromCLOBound(ts, clo, boundOrDefault(p.Bound))
}

// LambdaRange is Baruah's experimental baseline [1]: each HC task draws an
// independent λ_i uniformly from [Lo, Hi] and sets C^LO = λ_i·C^HI. The
// paper compares against [Lo, Hi] = [1/4, 1] and [1/8, 1].
type LambdaRange struct {
	// Lo, Hi bound the per-task fraction; 0 < Lo ≤ Hi ≤ 1.
	Lo, Hi float64
	// Bound selects the reporting inequality, as in LambdaFixed.
	Bound stats.Bound
}

// Name implements Policy.
func (p LambdaRange) Name() string {
	return fmt.Sprintf("lambda=[1/%g,1/%g]%s", 1/p.Lo, 1/p.Hi, boundSuffix(p.Bound))
}

// Assign implements Policy.
func (p LambdaRange) Assign(ts *mc.TaskSet, r *rand.Rand) (core.Assignment, error) {
	if !(0 < p.Lo && p.Lo <= p.Hi && p.Hi <= 1) {
		return core.Assignment{}, fmt.Errorf("policy: λ range [%g, %g] invalid", p.Lo, p.Hi)
	}
	hcs := ts.ByCrit(mc.HC)
	clo := make([]float64, len(hcs))
	for i, t := range hcs {
		lambda := p.Lo + r.Float64()*(p.Hi-p.Lo)
		clo[i] = lambda * t.CHI
	}
	return core.FromCLOBound(ts, clo, boundOrDefault(p.Bound))
}

// ACETOnly sets C^LO = ACET (n = 0), the naive strategy the motivational
// example shows to switch modes on roughly half of all jobs.
type ACETOnly struct{}

// Name implements Policy.
func (ACETOnly) Name() string { return "acet" }

// Assign implements Policy.
func (ACETOnly) Assign(ts *mc.TaskSet, _ *rand.Rand) (core.Assignment, error) {
	return ChebyshevUniform{N: 0}.Assign(ts, nil)
}
