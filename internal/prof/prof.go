// Package prof wires the standard pprof profilers into the command-line
// tools: Start begins CPU profiling and returns a stop function that also
// captures a heap profile, so every command exposes the same
// -cpuprofile/-memprofile contract with three lines of code.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins profiling according to the two file paths; either may be
// empty to skip that profile. The returned stop function must run exactly
// once before the process exits (defer it from main): it flushes the CPU
// profile and writes the heap profile after a final GC.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("prof: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("prof: %w", err)
			}
			runtime.GC() // materialise up-to-date allocation statistics
			werr := pprof.WriteHeapProfile(f)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				return fmt.Errorf("prof: %w", werr)
			}
		}
		return nil
	}, nil
}
