// Package objective is the allocation-free evaluation engine for the
// paper's Eq. 13 objective (1 − P^MS_sys) · max(U^LO_LC). It exists so a
// GA fitness call never materialises an assignment: the seed path rebuilt
// a full core.Assignment per genome — TaskSet clone, validation map,
// ByCrit slices — for ~2,400 calls per task set, which dominated the
// Fig. 4–6 sweeps once the simulator hot path was fixed.
//
// The engine exploits the closed-form structure of Eqs. 10–13: the
// objective is a product of per-task bound factors (1 − b.P(n_i), with
// the Cantelli 1/(1+n_i²) as the default b — Options.Bound swaps in any
// stats.Bound) times a function of the running HC utilisation sum
// Σ (ACET_i+n_i·σ_i)/P_i.
// An Evaluator therefore
//
//   - hoists the per-HC-task invariants (ACET_i, σ_i, C^HI_i, P_i) and the
//     genome-independent utilisations (U^HI_HC, U^LO_LC) once at
//     construction,
//   - evaluates a genome straight into pre-sized scratch with zero
//     per-call heap allocation (Fitness),
//   - re-scores GA offspring incrementally from the parent's cached
//     per-gene terms and left-to-right prefix product/sum arrays, so only
//     the changed genes are re-derived (the ga.Derived contract), and
//   - serves unmodified copies (Lo > Hi) straight from the parent's
//     cached fitness, with no recomputation at all.
//
// Parent states live in a generation cache: the states of exactly the
// genomes scored by the most recent FitnessBatch call, indexed by the
// address of the genome's first gene and verified by exact genome
// comparison (a state is a pure function of genome content, so a
// verified match can never return a stale score). That matches the GA's
// breeding structure — parents always come from the immediately
// preceding generation — and costs two fixed-size maps recycled every
// batch, instead of the digest-keyed, ever-growing memo cache this
// engine used previously: at the paper's genome lengths (4–8 HC tasks)
// hashing plus locking plus unbounded insertion cost more than the full
// recomputation it saved, and its allocations dominated the Fig. 4/5
// sweep's memory profile.
//
// Everything is bit-identical to the reference path
// core.Apply + edfvd.Schedulable by construction: the same expressions
// are evaluated in the same order (prefix arrays store exactly the
// left-to-right partial results the reference loops produce, so resuming
// a product at the first changed gene reproduces the full recomputation
// bit for bit), and the property tests in this package pin it.
package objective

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"chebymc/internal/core"
	"chebymc/internal/edfvd"
	"chebymc/internal/ga"
	"chebymc/internal/mc"
	"chebymc/internal/obs"
	"chebymc/internal/par"
	"chebymc/internal/stats"
)

// obsMemoEvicted counts states the generation cache dropped to stay under
// its cap — the signal a long-running process (mcserve) watches to confirm
// the engine's memory is bounded. Flushed at flip time, never per genome.
var obsMemoEvicted = obs.Default.Counter("objective_memo_evicted_total",
	"genome states evicted from the objective engine's generation cache to respect MemoCap")

// DefaultMemoCap bounds the states a generation cache retains (live
// previous-batch entries plus the recycling free list) when Options leaves
// MemoCap zero. It sits far above the paper's population sizes (60), so
// batch sweeps never evict — behaviour under the cap is bit-identical by
// construction — while a pathological caller (huge populations, or a
// daemon reusing one Evaluator across requests) stays bounded at
// cap · (5·genes+2) floats.
const DefaultMemoCap = 4096

// Options configures an Evaluator.
type Options struct {
	// RequireLC makes genomes whose assignment cannot also schedule the
	// task set's actual LC load (Eq. 8) infeasible — the acceptance-ratio
	// configuration of Fig. 6.
	RequireLC bool
	// DisableMemo turns the cached-state reuse off: every genome is a
	// full recomputation, regardless of provenance. Intended for the
	// equivalence tests that pin cached == uncached scoring.
	DisableMemo bool
	// Bound selects the concentration inequality behind the Eq. 10
	// per-task factor. nil selects core.DefaultBound() (Cantelli), which
	// reproduces the historical engine bit for bit.
	Bound stats.Bound
	// MemoCap bounds the number of genome states the generation cache
	// retains; 0 selects DefaultMemoCap, a negative value disables the
	// cap. Evicting a state only forfeits incremental re-scoring for its
	// descendants (they fall back to full recomputation, which is
	// bit-identical), so the cap changes memory, never results.
	MemoCap int
}

// state is one genome's cached evaluation. All float storage lives in a
// single flat slice so an entry costs one allocation:
//
//	genome | term | u | prefNS | prefU
//
// term[i] is the Eq. 10 factor 1 − bound.P(n_i) and u[i] the LO
// utilisation (ACET_i+n_i·σ_i)/P_i of HC task i; both are NaN when gene i
// is infeasible (Eq. 9 violation or non-positive budget). prefNS[k] and
// prefU[k] are the exact left-to-right partial product/sum over genes
// [0, k) — the same intermediate values core.SystemMSProb and
// mc.TaskSet.Util produce — so prefNS[k] is valid whenever no gene < k is
// infeasible, and a delta evaluation can resume at the first changed
// gene.
type state struct {
	flat []float64
	h    int
	bad  int // count of infeasible genes
	fit  float64
}

func newState(h int) *state {
	return &state{flat: make([]float64, 5*h+2), h: h}
}

func (s *state) genome() []float64 { return s.flat[0:s.h] }
func (s *state) term() []float64   { return s.flat[s.h : 2*s.h] }
func (s *state) u() []float64      { return s.flat[2*s.h : 3*s.h] }
func (s *state) prefNS() []float64 { return s.flat[3*s.h : 4*s.h+1] }
func (s *state) prefU() []float64  { return s.flat[4*s.h+1 : 5*s.h+2] }

// Evaluator scores Eq. 13 for n-vectors over the HC tasks of one task
// set. It is safe for concurrent FitnessBatch/Fitness calls when the
// workers argument is > 1; callers passing workers ≤ 1 promise the call
// is externally serialised (the ga.Run evaluation loop is). The task
// set must not change while the Evaluator is in use.
type Evaluator struct {
	// h is the number of HC tasks (the genome length); inv packs their
	// invariants — ACET_i, σ_i, C^HI_i, P_i — four per task in task-set
	// order (the order core.Apply matches genomes against), so a gene
	// evaluation touches one cache line and one bounds check.
	h   int
	inv []float64
	// uHCHI and uLCLO are the genome-independent utilisation sums of
	// Eq. 7, accumulated with the same left-to-right loops
	// mc.TaskSet.Util runs.
	uHCHI, uLCLO float64
	requireLC    bool

	// bound is the Eq. 10 concentration inequality; cantelli marks the
	// default engine, whose P is inlined on the hot path (same
	// expression as stats.CantelliBound, so the devirtualisation is
	// bit-identical).
	bound    stats.Bound
	cantelli bool

	gens    *genCache // previous-batch states; nil when disabled
	scratch sync.Pool // *state for full evaluations outside the cache

	hits, fulls, deltas atomic.Uint64
}

// New builds an Evaluator for the HC tasks of ts. It returns an error
// for a set without HC tasks — there is nothing to optimise.
func New(ts *mc.TaskSet, opts Options) (*Evaluator, error) {
	b := opts.Bound
	if b == nil {
		b = core.DefaultBound()
	}
	_, cantelli := b.(stats.Cantelli)
	e := &Evaluator{requireLC: opts.RequireLC, bound: b, cantelli: cantelli}
	for _, t := range ts.Tasks {
		switch t.Crit {
		case mc.HC:
			e.inv = append(e.inv, t.Profile.ACET, t.Profile.Sigma, t.CHI, t.Period)
			e.uHCHI += t.UHI()
		default:
			e.uLCLO += t.ULO()
		}
	}
	h := len(e.inv) / 4
	e.h = h
	if h == 0 {
		return nil, fmt.Errorf("objective: task set has no HC tasks")
	}
	if !opts.DisableMemo {
		cap := opts.MemoCap
		if cap == 0 {
			cap = DefaultMemoCap
		}
		if cap < 0 {
			cap = 0 // unbounded
		}
		e.gens = newGenCache(cap)
	}
	e.scratch.New = func() any { return newState(h) }
	return e, nil
}

// NumGenes reports the genome length the Evaluator scores: the number of
// HC tasks.
func (e *Evaluator) NumGenes() int { return e.h }

// gene derives HC task i's term and utilisation from its n parameter,
// replicating core.Apply's Eq. 6/Eq. 9 handling exactly: the one-ulp
// overshoot of a clamped n = NMax snaps to C^HI, genuine violations,
// non-positive budgets and negative n mark the gene infeasible (NaN).
func (e *Evaluator) gene(n float64, i int) (term, u float64) {
	v := e.inv[4*i : 4*i+4 : 4*i+4]
	w := v[0] + n*v[1]
	ok := n >= 0
	if chi := v[2]; w > chi {
		if w <= chi*(1+core.Eq9Slack) {
			w = chi
		} else {
			ok = false
		}
	}
	if !(w > 0) {
		ok = false
	}
	if !ok {
		return math.NaN(), math.NaN()
	}
	if e.cantelli {
		// Inlined stats.CantelliBound (n ≥ 0 here, so the n < 0 clamp
		// inside the free function is dead): same expression, same bits.
		term = 1 - 1/(1+n*n)
	} else {
		term = 1 - e.bound.P(n)
	}
	return term, w / v[3]
}

// compute fills st with the evaluation of g. With a nil parent every
// gene is derived fresh; otherwise genes outside [lo, hi] are copied
// from parent (g is guaranteed identical there) and only the changed
// range is re-derived. The prefix arrays are resumed at lo from the
// parent's exact partial results, so both paths produce the same bits.
func (e *Evaluator) compute(st *state, g []float64, parent *state, lo, hi int) {
	h := st.h
	if parent == nil {
		lo, hi = 0, h-1
	} else if lo > hi {
		lo, hi = h, h-1 // unmodified copy: reuse everything
	}
	term, u := st.term(), st.u()
	if parent != nil {
		// One flat copy beats six ranged ones at these genome lengths:
		// the gene loop overwrites [lo, hi] and the resume loop below
		// overwrites every prefix past lo, so copying them is harmless.
		st.bad = parent.bad
		if st.bad != 0 {
			// Un-count the parent's infeasible genes inside the re-derived
			// range; a clean parent has none, so the scan is skipped.
			pterm := parent.term()
			for i := lo; i <= hi; i++ {
				if math.IsNaN(pterm[i]) {
					st.bad--
				}
			}
		}
		copy(st.flat, parent.flat)
		copy(st.genome(), g)
	} else {
		copy(st.genome(), g)
		st.bad = 0
		st.prefNS()[0] = 1
		st.prefU()[0] = 0
	}
	for i := lo; i <= hi; i++ {
		ti, ui := e.gene(g[i], i)
		term[i], u[i] = ti, ui
		if math.IsNaN(ti) {
			st.bad++
		}
	}
	// Resume the left-to-right Eq. 10 product and Eq. 7 sum at the first
	// changed gene; per-gene values beyond hi are the parent's cached
	// terms, so this loop is memory traffic, not re-derivation.
	prefNS, prefU := st.prefNS(), st.prefU()
	for i := lo; i < h; i++ {
		prefNS[i+1] = prefNS[i] * term[i]
		prefU[i+1] = prefU[i] + u[i]
	}
	st.fit = e.finish(st)
}

// finish turns a filled state into the fitness value, in the same
// operation order as the reference path: P^MS_sys = 1 − Π(1−bound)
// (core.SystemMSProb), max U^LO_LC from Eqs. 11–12 (core.MaxULCLO), the
// optional Eq. 8 feasibility gate (edfvd.Schedulable), and Eq. 13 via
// core.ObjectiveValue.
func (e *Evaluator) finish(st *state) float64 {
	if st.bad > 0 {
		return math.Inf(-1)
	}
	h := st.h
	pms := 1 - st.prefNS()[h]
	uHCLO := st.prefU()[h]
	if e.requireLC && !edfvd.SchedulableUtil(e.uLCLO, uHCLO, e.uHCHI, 0).Schedulable {
		return math.Inf(-1)
	}
	return core.ObjectiveValue(pms, core.MaxULCLO(uHCLO, e.uHCHI))
}

// Fitness scores one genome by full recomputation into pooled scratch —
// zero heap allocations per call in steady state. It satisfies the
// ga.Problem.Fitness contract and is the reference the delta/copy paths
// are pinned against.
func (e *Evaluator) Fitness(g []float64) float64 {
	st := e.scratch.Get().(*state)
	e.compute(st, g, nil, 0, 0)
	fit := st.fit
	e.scratch.Put(st)
	return fit
}

// score kinds, tallied per batch (serial path) or atomically (parallel
// path) so the hot loop itself touches no shared counters.
const (
	scoreHit = iota // unmodified copy served from the parent's fitness
	scoreDelta
	scoreFull
)

// FitnessBatch implements ga.BatchFitness: each genome is served from
// its parent's cached fitness (unmodified copies), re-scored
// incrementally from the parent's cached state, or fully recomputed, in
// that order of preference. Scores are bit-identical across the three
// paths and for every workers value.
func (e *Evaluator) FitnessBatch(batch []ga.Derived, out []float64, workers int) {
	if e.gens == nil {
		// Cached-state reuse disabled: full recomputation for everything.
		if workers > 1 && len(batch) > 1 {
			_, _ = par.MapCtx(context.Background(), workers, len(batch), func(i int) (struct{}, error) {
				out[i] = e.Fitness(batch[i].Genome)
				return struct{}{}, nil
			})
		} else {
			for i := range batch {
				out[i] = e.Fitness(batch[i].Genome)
			}
		}
		e.fulls.Add(uint64(len(batch)))
		return
	}
	if workers > 1 && len(batch) > 1 {
		_, _ = par.MapCtx(context.Background(), workers, len(batch), func(i int) (struct{}, error) {
			fit, kind := e.score(batch[i], true)
			out[i] = fit
			switch kind {
			case scoreHit:
				e.hits.Add(1)
			case scoreDelta:
				e.deltas.Add(1)
			default:
				e.fulls.Add(1)
			}
			return struct{}{}, nil
		})
	} else {
		var hits, fulls, deltas uint64
		for i := range batch {
			fit, kind := e.score(batch[i], false)
			out[i] = fit
			switch kind {
			case scoreHit:
				hits++
			case scoreDelta:
				deltas++
			default:
				fulls++
			}
		}
		e.hits.Add(hits)
		e.fulls.Add(fulls)
		e.deltas.Add(deltas)
	}
	// This batch's states become the next batch's parents.
	e.gens.flip()
}

// score evaluates one derived genome and records its state for the next
// batch. conc marks calls from concurrent scorers, which must lock the
// generation cache's mutable side.
func (e *Evaluator) score(d ga.Derived, conc bool) (float64, int) {
	var parent *state
	if d.Parent != nil {
		parent = e.gens.lookup(d.Parent)
	}
	if parent != nil && d.Lo > d.Hi {
		// Unmodified copy: the genome is byte-identical to the parent, so
		// the cached fitness is the full recomputation's result bit for
		// bit. The state is still duplicated under the child's address so
		// grandchildren can re-score incrementally.
		st := e.gens.take(e, conc)
		copy(st.flat, parent.flat)
		st.bad, st.fit = parent.bad, parent.fit
		e.gens.put(&d.Genome[0], st, conc)
		return parent.fit, scoreHit
	}
	st := e.gens.take(e, conc)
	kind := scoreFull
	if parent != nil {
		kind = scoreDelta
		e.compute(st, d.Genome, parent, d.Lo, d.Hi)
	} else {
		e.compute(st, d.Genome, nil, 0, 0)
	}
	e.gens.put(&d.Genome[0], st, conc)
	return st.fit, kind
}

// BatchStats implements ga.BatchStats.
func (e *Evaluator) BatchStats() (hits, fulls, deltas uint64) {
	return e.hits.Load(), e.fulls.Load(), e.deltas.Load()
}

// genCache holds the states of the genomes scored by the most recent
// FitnessBatch call, keyed by the address of each genome's first gene.
// The address is an index, not the proof: lookup verifies the cached
// genome matches the parent bit for bit, so a recycled allocation can
// never surface a stale state (and a verified state is valid for any
// slice with that content — states are pure functions of the genome).
// Entries live in parallel key/state slices scanned linearly — batches
// are population-sized (tens of genomes), where a pointer scan beats a
// map's hashing, write barriers and iteration. Two entry sets ping-pong
// per batch and the states they drop are recycled through a free list,
// so steady-state batch scoring allocates nothing.
type genCache struct {
	mu       sync.Mutex // guards cur and free on concurrent paths
	prevKeys []*float64
	prevSts  []*state
	curKeys  []*float64
	curSts   []*state
	free     []*state
	// cap bounds the states retained across flips (live previous batch
	// plus free list); 0 means unbounded. Enforced in flip, so the
	// per-genome hot path never sees it.
	cap int
}

func newGenCache(cap int) *genCache { return &genCache{cap: cap} }

// lookup returns the previous batch's state for parent, or nil. The
// previous entries are read-only between flips, so no lock is needed
// even concurrently.
func (c *genCache) lookup(parent []float64) *state {
	key := &parent[0]
	for i, k := range c.prevKeys {
		if k == key {
			if st := c.prevSts[i]; equalGenomes(st.genome(), parent) {
				return st
			}
			return nil
		}
	}
	return nil
}

// take returns a recycled state for the evaluator's genome length,
// growing the free list a block at a time when it runs dry (an
// evaluator's working set is two batches of states; block allocation
// keeps the object count low for the GC).
func (c *genCache) take(e *Evaluator, conc bool) *state {
	if conc {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	if len(c.free) == 0 {
		const block = 16
		sts := make([]state, block)
		flat := make([]float64, block*(5*e.h+2))
		for i := range sts {
			sts[i].flat, flat = flat[:5*e.h+2:5*e.h+2], flat[5*e.h+2:]
			sts[i].h = e.h
			c.free = append(c.free, &sts[i])
		}
	}
	n := len(c.free)
	st := c.free[n-1]
	c.free = c.free[:n-1]
	return st
}

// put records a scored genome's state under its address.
func (c *genCache) put(key *float64, st *state, conc bool) {
	if conc {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	c.curKeys = append(c.curKeys, key)
	c.curSts = append(c.curSts, st)
}

// flip retires the previous batch's states to the free list and
// promotes the current batch's. Called between batches, so it needs no
// lock. When a cap is set, the retained working set (live previous batch
// plus free list) is trimmed here: the free list first — dropping pure
// scratch loses nothing — then the tail of the live batch, whose
// descendants simply fall back to full recomputation (bit-identical by
// the engine's equivalence contract). Evictions are counted once per
// flip, so the per-genome path never touches the counter.
func (c *genCache) flip() {
	c.free = append(c.free, c.prevSts...)
	c.prevKeys, c.curKeys = c.curKeys, c.prevKeys[:0]
	c.prevSts, c.curSts = c.curSts, c.prevSts[:0]
	if c.cap <= 0 {
		return
	}
	evicted := 0
	if over := len(c.prevSts) + len(c.free) - c.cap; over > 0 {
		drop := min(over, len(c.free))
		for i := len(c.free) - drop; i < len(c.free); i++ {
			c.free[i] = nil
		}
		c.free = c.free[:len(c.free)-drop]
		evicted += drop
	}
	if over := len(c.prevSts) - c.cap; over > 0 {
		keep := c.cap
		for i := keep; i < len(c.prevSts); i++ {
			c.prevKeys[i], c.prevSts[i] = nil, nil
		}
		c.prevKeys = c.prevKeys[:keep]
		c.prevSts = c.prevSts[:keep]
		evicted += over
	}
	if evicted > 0 {
		obsMemoEvicted.Add(uint64(evicted))
	}
}

// equalGenomes compares gene vectors bit-for-bit (NaN-safe: GA genomes
// never contain NaN, and distinct NaN payloads must not compare equal
// for caching purposes anyway, so == per gene is exactly right).
func equalGenomes(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
