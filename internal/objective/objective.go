// Package objective is the allocation-free evaluation engine for the
// paper's Eq. 13 objective (1 − P^MS_sys) · max(U^LO_LC). It exists so a
// GA fitness call never materialises an assignment: the seed path rebuilt
// a full core.Assignment per genome — TaskSet clone, validation map,
// ByCrit slices — for ~2,400 calls per task set, which dominated the
// Fig. 4–6 sweeps once the simulator hot path was fixed.
//
// The engine exploits the closed-form structure of Eqs. 10–13: the
// objective is a product of per-task bound factors (1 − b.P(n_i), with
// the Cantelli 1/(1+n_i²) as the default b — Options.Bound swaps in any
// stats.Bound) times a function of the running HC utilisation sum
// Σ (ACET_i+n_i·σ_i)/P_i.
// An Evaluator therefore
//
//   - hoists the per-HC-task invariants (ACET_i, σ_i, C^HI_i, P_i) and the
//     genome-independent utilisations (U^HI_HC, U^LO_LC) once at
//     construction,
//   - evaluates a genome straight into pre-sized scratch with zero
//     per-call heap allocation (Fitness),
//   - re-scores GA offspring incrementally from the parent's cached
//     per-gene terms and left-to-right prefix product/sum arrays, so only
//     the changed genes are re-derived (the ga.Derived contract), and
//   - memoises evaluations under a genome digest, because converged late
//     generations re-evaluate many duplicate genomes.
//
// Everything is bit-identical to the reference path
// core.Apply + edfvd.Schedulable by construction: the same expressions
// are evaluated in the same order (prefix arrays store exactly the
// left-to-right partial results the reference loops produce, so resuming
// a product at the first changed gene reproduces the full recomputation
// bit for bit), and the property tests in this package pin it.
package objective

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"chebymc/internal/core"
	"chebymc/internal/edfvd"
	"chebymc/internal/ga"
	"chebymc/internal/mc"
	"chebymc/internal/par"
	"chebymc/internal/stats"
)

// Options configures an Evaluator.
type Options struct {
	// RequireLC makes genomes whose assignment cannot also schedule the
	// task set's actual LC load (Eq. 8) infeasible — the acceptance-ratio
	// configuration of Fig. 6.
	RequireLC bool
	// DisableMemo turns the genome-digest cache off (every non-derived
	// score is a full evaluation). Intended for the equivalence tests
	// that pin memo-on == memo-off.
	DisableMemo bool
	// Bound selects the concentration inequality behind the Eq. 10
	// per-task factor. nil selects core.DefaultBound() (Cantelli), which
	// reproduces the historical engine bit for bit. The bound's identity
	// is folded into the memo digest (stats.BoundDigest), so evaluators
	// with different bounds can never share cached scores.
	Bound stats.Bound
}

// state is one genome's cached evaluation. All float storage lives in a
// single flat slice so an entry costs one allocation:
//
//	genome | term | u | prefNS | prefU
//
// term[i] is the Eq. 10 factor 1 − bound.P(n_i) and u[i] the LO
// utilisation (ACET_i+n_i·σ_i)/P_i of HC task i; both are NaN when gene i
// is infeasible (Eq. 9 violation or non-positive budget). prefNS[k] and
// prefU[k] are the exact left-to-right partial product/sum over genes
// [0, k) — the same intermediate values core.SystemMSProb and
// mc.TaskSet.Util produce — so prefNS[k] is valid whenever no gene < k is
// infeasible, and a delta evaluation can resume at the first changed
// gene.
type state struct {
	flat []float64
	h    int
	bad  int // count of infeasible genes
	fit  float64
}

func newState(h int) *state {
	return &state{flat: make([]float64, 5*h+2), h: h}
}

func (s *state) genome() []float64 { return s.flat[0:s.h] }
func (s *state) term() []float64   { return s.flat[s.h : 2*s.h] }
func (s *state) u() []float64      { return s.flat[2*s.h : 3*s.h] }
func (s *state) prefNS() []float64 { return s.flat[3*s.h : 4*s.h+1] }
func (s *state) prefU() []float64  { return s.flat[4*s.h+1 : 5*s.h+2] }

// entry is one memo-cache record: a state plus its digest and the
// collision chain for the digest bucket.
type entry struct {
	state
	digest uint64
	next   *entry
}

// Evaluator scores Eq. 13 for n-vectors over the HC tasks of one task
// set. It is safe for concurrent FitnessBatch/Fitness calls. The task
// set must not change while the Evaluator is in use.
type Evaluator struct {
	// Per-HC-task invariants, in task-set order (the order core.Apply
	// matches genomes against).
	acet, sigma, chi, period []float64
	// uHCHI and uLCLO are the genome-independent utilisation sums of
	// Eq. 7, accumulated with the same left-to-right loops
	// mc.TaskSet.Util runs.
	uHCHI, uLCLO float64
	requireLC    bool

	// bound is the Eq. 10 concentration inequality; digestSeed folds its
	// identity into every genome digest.
	bound      stats.Bound
	digestSeed uint64

	memo    *memoCache // nil when disabled
	scratch sync.Pool  // *state for full evaluations outside the memo

	hits, fulls, deltas atomic.Uint64
}

// New builds an Evaluator for the HC tasks of ts. It returns an error
// for a set without HC tasks — there is nothing to optimise.
func New(ts *mc.TaskSet, opts Options) (*Evaluator, error) {
	b := opts.Bound
	if b == nil {
		b = core.DefaultBound()
	}
	e := &Evaluator{requireLC: opts.RequireLC, bound: b, digestSeed: stats.BoundDigest(b)}
	for _, t := range ts.Tasks {
		switch t.Crit {
		case mc.HC:
			e.acet = append(e.acet, t.Profile.ACET)
			e.sigma = append(e.sigma, t.Profile.Sigma)
			e.chi = append(e.chi, t.CHI)
			e.period = append(e.period, t.Period)
			e.uHCHI += t.UHI()
		default:
			e.uLCLO += t.ULO()
		}
	}
	h := len(e.acet)
	if h == 0 {
		return nil, fmt.Errorf("objective: task set has no HC tasks")
	}
	if !opts.DisableMemo {
		e.memo = newMemoCache(h)
	}
	e.scratch.New = func() any { return newState(h) }
	return e, nil
}

// NumGenes reports the genome length the Evaluator scores: the number of
// HC tasks.
func (e *Evaluator) NumGenes() int { return len(e.acet) }

// gene derives HC task i's term and utilisation from its n parameter,
// replicating core.Apply's Eq. 6/Eq. 9 handling exactly: the one-ulp
// overshoot of a clamped n = NMax snaps to C^HI, genuine violations,
// non-positive budgets and negative n mark the gene infeasible (NaN).
func (e *Evaluator) gene(st *state, g []float64, i int) {
	n := g[i]
	w := e.acet[i] + n*e.sigma[i]
	ok := n >= 0
	if w > e.chi[i] {
		if w <= e.chi[i]*(1+core.Eq9Slack) {
			w = e.chi[i]
		} else {
			ok = false
		}
	}
	if !(w > 0) {
		ok = false
	}
	if !ok {
		st.term()[i] = math.NaN()
		st.u()[i] = math.NaN()
		return
	}
	st.term()[i] = 1 - e.bound.P(n)
	st.u()[i] = w / e.period[i]
}

// compute fills st with the evaluation of g. With a nil parent every
// gene is derived fresh; otherwise genes outside [lo, hi] are copied
// from parent (g is guaranteed identical there) and only the changed
// range is re-derived. The prefix arrays are resumed at lo from the
// parent's exact partial results, so both paths produce the same bits.
func (e *Evaluator) compute(st *state, g []float64, parent *state, lo, hi int) {
	h := st.h
	if parent == nil {
		lo, hi = 0, h-1
	} else if lo > hi {
		lo, hi = h, h-1 // unmodified copy: reuse everything
	}
	if parent != nil {
		copy(st.genome(), g)
		copy(st.term()[:lo], parent.term()[:lo])
		copy(st.u()[:lo], parent.u()[:lo])
		copy(st.prefNS()[:lo+1], parent.prefNS()[:lo+1])
		copy(st.prefU()[:lo+1], parent.prefU()[:lo+1])
		copy(st.term()[hi+1:], parent.term()[hi+1:])
		copy(st.u()[hi+1:], parent.u()[hi+1:])
		st.bad = parent.bad
		for i := lo; i <= hi; i++ {
			if math.IsNaN(parent.term()[i]) {
				st.bad--
			}
		}
	} else {
		copy(st.genome(), g)
		st.bad = 0
		st.prefNS()[0] = 1
		st.prefU()[0] = 0
	}
	for i := lo; i <= hi; i++ {
		e.gene(st, g, i)
		if math.IsNaN(st.term()[i]) {
			st.bad++
		}
	}
	// Resume the left-to-right Eq. 10 product and Eq. 7 sum at the first
	// changed gene; per-gene values beyond hi are the parent's cached
	// terms, so this loop is memory traffic, not re-derivation.
	prefNS, prefU, term, u := st.prefNS(), st.prefU(), st.term(), st.u()
	for i := lo; i < h; i++ {
		prefNS[i+1] = prefNS[i] * term[i]
		prefU[i+1] = prefU[i] + u[i]
	}
	st.fit = e.finish(st)
}

// finish turns a filled state into the fitness value, in the same
// operation order as the reference path: P^MS_sys = 1 − Π(1−bound)
// (core.SystemMSProb), max U^LO_LC from Eqs. 11–12 (core.MaxULCLO), the
// optional Eq. 8 feasibility gate (edfvd.Schedulable), and Eq. 13 via
// core.ObjectiveValue.
func (e *Evaluator) finish(st *state) float64 {
	if st.bad > 0 {
		return math.Inf(-1)
	}
	h := st.h
	pms := 1 - st.prefNS()[h]
	uHCLO := st.prefU()[h]
	if e.requireLC && !edfvd.SchedulableUtil(e.uLCLO, uHCLO, e.uHCHI, 0).Schedulable {
		return math.Inf(-1)
	}
	return core.ObjectiveValue(pms, core.MaxULCLO(uHCLO, e.uHCHI))
}

// Fitness scores one genome by full recomputation into pooled scratch —
// zero heap allocations per call in steady state. It satisfies the
// ga.Problem.Fitness contract and is the reference the delta/memo paths
// are pinned against.
func (e *Evaluator) Fitness(g []float64) float64 {
	st := e.scratch.Get().(*state)
	e.compute(st, g, nil, 0, 0)
	fit := st.fit
	e.scratch.Put(st)
	return fit
}

// FitnessBatch implements ga.BatchFitness: each genome is served from
// the memo cache, re-scored incrementally from its parent's cached
// state, or fully recomputed, in that order of preference. Scores are
// bit-identical across the three paths and for every workers value.
func (e *Evaluator) FitnessBatch(batch []ga.Derived, out []float64, workers int) {
	_, _ = par.MapCtx(context.Background(), workers, len(batch), func(i int) (struct{}, error) {
		out[i] = e.score(batch[i])
		return struct{}{}, nil
	})
}

// score evaluates one derived genome.
func (e *Evaluator) score(d ga.Derived) float64 {
	if e.memo == nil {
		e.fulls.Add(1)
		return e.Fitness(d.Genome)
	}
	digest := genomeDigest(e.digestSeed, d.Genome)
	if hit := e.memo.lookup(digest, d.Genome); hit != nil {
		e.hits.Add(1)
		return hit.fit
	}
	var parent *state
	if d.Parent != nil {
		if pe := e.memo.lookup(genomeDigest(e.digestSeed, d.Parent), d.Parent); pe != nil {
			parent = &pe.state
		}
	}
	st := e.scratch.Get().(*state)
	if parent != nil {
		e.deltas.Add(1)
		e.compute(st, d.Genome, parent, d.Lo, d.Hi)
	} else {
		e.fulls.Add(1)
		e.compute(st, d.Genome, nil, 0, 0)
	}
	fit := e.memo.insert(digest, st)
	e.scratch.Put(st)
	return fit
}

// BatchStats implements ga.BatchStats.
func (e *Evaluator) BatchStats() (hits, fulls, deltas uint64) {
	return e.hits.Load(), e.fulls.Load(), e.deltas.Load()
}

// memoCache maps genome digests to cached states. Digest collisions are
// resolved by exact genome comparison — determinism may not hinge on a
// 64-bit hash. Entries are allocated in fixed-size blocks so steady-state
// insertion cost stays amortised; the cache only grows (an Evaluator
// lives for one GA run, bounding the population of distinct genomes).
type memoCache struct {
	mu      sync.RWMutex
	buckets map[uint64]*entry
	block   []entry
	flats   []float64
	h       int
}

const memoBlock = 128

func newMemoCache(h int) *memoCache {
	return &memoCache{buckets: make(map[uint64]*entry), h: h}
}

// lookup returns the entry for genome g, or nil.
func (c *memoCache) lookup(digest uint64, g []float64) *entry {
	c.mu.RLock()
	en := c.buckets[digest]
	for en != nil && !equalGenomes(en.genome(), g) {
		en = en.next
	}
	c.mu.RUnlock()
	return en
}

// insert stores a copy of st under digest and returns the cached fitness
// — the already-present one when another scorer raced the same genome in
// first (the values are identical by purity; keeping the incumbent makes
// that visible).
func (c *memoCache) insert(digest uint64, st *state) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	head := c.buckets[digest]
	for en := head; en != nil; en = en.next {
		if equalGenomes(en.genome(), st.genome()) {
			return en.fit
		}
	}
	if len(c.block) == 0 {
		c.block = make([]entry, memoBlock)
		c.flats = make([]float64, memoBlock*(5*c.h+2))
	}
	en := &c.block[0]
	c.block = c.block[1:]
	en.flat, c.flats = c.flats[:5*c.h+2:5*c.h+2], c.flats[5*c.h+2:]
	en.h = c.h
	copy(en.flat, st.flat)
	en.bad, en.fit = st.bad, st.fit
	en.digest, en.next = digest, head
	c.buckets[digest] = en
	return en.fit
}

// equalGenomes compares gene vectors bit-for-bit (NaN-safe: GA genomes
// never contain NaN, and distinct NaN payloads must not compare equal
// for memo purposes anyway, so == per gene is exactly right).
func equalGenomes(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// genomeDigest hashes the raw float64 bits with FNV-1a, continuing from
// seed — the evaluator's bound digest — so identical genomes scored under
// different bounds land in different memo buckets (and, via the exact
// genome comparison on lookup, can only ever collide within one
// evaluator, where the bound is fixed).
func genomeDigest(seed uint64, g []float64) uint64 {
	const prime64 = 1099511628211
	h := seed
	for _, x := range g {
		b := math.Float64bits(x)
		for s := 0; s < 64; s += 8 {
			h ^= (b >> s) & 0xff
			h *= prime64
		}
	}
	return h
}
