package objective

import (
	"math"
	"math/rand"
	"testing"

	"chebymc/internal/core"
	"chebymc/internal/ga"
	"chebymc/internal/mc"
	"chebymc/internal/stats"
	"chebymc/internal/taskgen"
)

func benchSet(b *testing.B, seed int64) *mc.TaskSet {
	b.Helper()
	r := rand.New(rand.NewSource(seed))
	ts, err := taskgen.HCOnly(r, taskgen.Config{}, 0.7)
	if err != nil {
		b.Fatal(err)
	}
	return ts
}

func benchGenomes(ts *mc.TaskSet, count int, seed int64) [][]float64 {
	r := rand.New(rand.NewSource(seed))
	hcs := ts.ByCrit(mc.HC)
	out := make([][]float64, count)
	for i := range out {
		g := make([]float64, len(hcs))
		for k, t := range hcs {
			g[k] = r.Float64() * math.Min(core.NMax(t), 50)
		}
		out[i] = g
	}
	return out
}

// BenchmarkObjective measures the engine's full-recompute path — the
// direct replacement for the old core.Apply fitness closure
// (BenchmarkObjectiveApply). The ISSUE acceptance bar is ≥ 3× between
// the two.
func BenchmarkObjective(b *testing.B) {
	ts := benchSet(b, 1)
	e, err := New(ts, Options{})
	if err != nil {
		b.Fatal(err)
	}
	genomes := benchGenomes(ts, 64, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.Fitness(genomes[i%len(genomes)])
	}
}

// BenchmarkObjectiveApply is the seed fitness path: clone + core.Apply
// per evaluation.
func BenchmarkObjectiveApply(b *testing.B) {
	ts := benchSet(b, 1)
	genomes := benchGenomes(ts, 64, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := core.Apply(ts, genomes[i%len(genomes)])
		if err != nil {
			b.Fatal(err)
		}
		_ = a.Objective
	}
}

// BenchmarkObjectiveDelta measures incremental re-scoring of a
// single-gene change against a cached parent state — the GA mutation
// case the delta path exists for. It drives compute directly: through
// FitnessBatch every distinct child would land in the memo, so a cycled
// workload degenerates to cache hits after one pass.
func BenchmarkObjectiveDelta(b *testing.B) {
	ts := benchSet(b, 1)
	e, err := New(ts, Options{DisableMemo: true})
	if err != nil {
		b.Fatal(err)
	}
	parent := benchGenomes(ts, 1, 2)[0]
	pst := e.scratch.Get().(*state)
	e.compute(pst, parent, nil, 0, 0)
	h := len(parent)
	children := make([][]float64, 64)
	r := rand.New(rand.NewSource(3))
	ks := make([]int, len(children))
	for i := range children {
		c := append([]float64(nil), parent...)
		k := r.Intn(h)
		c[k] = r.Float64() * c[k]
		children[i], ks[i] = c, k
	}
	st := e.scratch.Get().(*state)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(children)
		e.compute(st, children[j], pst, ks[j], ks[j])
		_ = e.finish(st)
	}
}

// BenchmarkObjectiveCopyHit measures the cache-hit path: an unmodified
// copy (Lo > Hi) served from the parent's cached fitness. Two slices of
// identical content alternate as parent and child so every batch after
// the first is a hit.
func BenchmarkObjectiveCopyHit(b *testing.B) {
	ts := benchSet(b, 1)
	e, err := New(ts, Options{})
	if err != nil {
		b.Fatal(err)
	}
	h := ts.NumHC()
	g0 := benchGenomes(ts, 1, 2)[0]
	g1 := append([]float64(nil), g0...)
	out := make([]float64, 1)
	batch := make([]ga.Derived, 1)
	batch[0] = ga.Derived{Genome: g0}
	e.FitnessBatch(batch, out, 1) // prime the cache
	gs := [2][]float64{g1, g0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch[0] = ga.Derived{Genome: gs[i%2], Parent: gs[(i+1)%2], Lo: h, Hi: -1}
		e.FitnessBatch(batch, out, 1)
	}
}

// BenchmarkObjectiveBatchGA runs a whole GA search through the batched
// engine — the end-to-end shape policy.ChebyshevGA drives.
func BenchmarkObjectiveBatchGA(b *testing.B) {
	ts := benchSet(b, 1)
	hcs := ts.ByCrit(mc.HC)
	bounds := make([]ga.Bound, len(hcs))
	for i, t := range hcs {
		bounds[i] = ga.Bound{Lo: 0, Hi: math.Min(core.NMax(t), 50)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := New(ts, Options{})
		if err != nil {
			b.Fatal(err)
		}
		cfg := ga.Defaults()
		cfg.Seed = 1
		cfg.PopSize = 40
		cfg.Generations = 60
		if _, err := ga.Run(ga.Problem{Bounds: bounds, Batch: e}, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObjectiveBounds measures the full-recompute path under the
// non-default Vysochanskij–Petunin bound — the same workload as
// BenchmarkObjective, so the pair exposes what the bound-interface
// indirection costs. The bench gate tracks its allocs alongside the
// default path's.
func BenchmarkObjectiveBounds(b *testing.B) {
	ts := benchSet(b, 1)
	e, err := New(ts, Options{Bound: stats.VysochanskijPetunin{}})
	if err != nil {
		b.Fatal(err)
	}
	genomes := benchGenomes(ts, 64, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.Fitness(genomes[i%len(genomes)])
	}
}
