package objective

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"chebymc/internal/core"
	"chebymc/internal/edfvd"
	"chebymc/internal/ga"
	"chebymc/internal/mc"
	"chebymc/internal/taskgen"
)

// refFitness is the seed fitness path the engine replaces — the exact
// closure policy.ChebyshevGA used before this engine existed. Every test
// here pins the engine against it bit for bit.
func refFitness(ts *mc.TaskSet, requireLC bool) func([]float64) float64 {
	return func(g []float64) float64 {
		a, err := core.Apply(ts, g)
		if err != nil {
			return math.Inf(-1)
		}
		if requireLC && !edfvd.Schedulable(a.TaskSet).Schedulable {
			return math.Inf(-1)
		}
		return a.Objective
	}
}

// randomSet draws a task set: HC-only or mixed, varying sizes.
func randomSet(t *testing.T, r *rand.Rand, mixed bool) *mc.TaskSet {
	t.Helper()
	u := 0.3 + r.Float64()*0.6
	var (
		ts  *mc.TaskSet
		err error
	)
	if mixed {
		ts, err = taskgen.Mixed(r, taskgen.Config{}, u)
	} else {
		ts, err = taskgen.HCOnly(r, taskgen.Config{}, u)
	}
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

// randomGenome draws a genome inside the GA's gene bounds
// [0, min(NMax, 50)], occasionally pinning genes to the exact bounds to
// exercise the Eq. 9 clamp.
func randomGenome(r *rand.Rand, ts *mc.TaskSet) []float64 {
	hcs := ts.ByCrit(mc.HC)
	g := make([]float64, len(hcs))
	for i, t := range hcs {
		hi := math.Min(core.NMax(t), 50)
		switch r.Intn(10) {
		case 0:
			g[i] = 0
		case 1:
			g[i] = hi // exact NMax: the one-ulp clamp case
		default:
			g[i] = r.Float64() * hi
		}
	}
	return g
}

// TestFitnessMatchesApplyPath: the engine's full evaluation must equal
// the core.Apply + edfvd.Schedulable reference to the last bit, over
// random task sets × genomes × RequireLC.
func TestFitnessMatchesApplyPath(t *testing.T) {
	for _, mixed := range []bool{false, true} {
		for _, requireLC := range []bool{false, true} {
			t.Run(fmt.Sprintf("mixed=%v/requireLC=%v", mixed, requireLC), func(t *testing.T) {
				r := rand.New(rand.NewSource(11))
				for set := 0; set < 40; set++ {
					ts := randomSet(t, r, mixed)
					if ts.NumHC() == 0 {
						continue
					}
					ref := refFitness(ts, requireLC)
					e, err := New(ts, Options{RequireLC: requireLC})
					if err != nil {
						t.Fatal(err)
					}
					for trial := 0; trial < 25; trial++ {
						g := randomGenome(r, ts)
						want := ref(g)
						if got := e.Fitness(g); got != want {
							t.Fatalf("set %d trial %d: Fitness = %v, want %v (genome %v)",
								set, trial, got, want, g)
						}
					}
				}
			})
		}
	}
}

// TestFitnessInfeasibleGenomes: out-of-contract genomes (negative n,
// Eq. 9 violations) must score -Inf exactly like the reference path.
func TestFitnessInfeasibleGenomes(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	ts := randomSet(t, r, false)
	ref := refFitness(ts, false)
	e, err := New(ts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	h := ts.NumHC()
	cases := [][]float64{
		make([]float64, h), // all zeros: feasible baseline
	}
	neg := make([]float64, h)
	neg[0] = -1
	cases = append(cases, neg)
	huge := make([]float64, h)
	for i := range huge {
		huge[i] = 1e9 // far beyond NMax for any task with σ > 0
	}
	cases = append(cases, huge)
	for ci, g := range cases {
		want := ref(g)
		if got := e.Fitness(g); got != want {
			t.Errorf("case %d: Fitness = %v, want %v", ci, got, want)
		}
	}
}

// TestDeltaMatchesFull is the tentpole property test: incremental
// re-scoring from a parent's cached state must equal full recomputation
// to the last bit, over random task sets × genomes × change ranges —
// including ranges that contain unchanged genes, empty ranges
// (unmodified copies), and parents/children that are infeasible.
func TestDeltaMatchesFull(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for set := 0; set < 30; set++ {
		ts := randomSet(t, r, set%2 == 1)
		if ts.NumHC() == 0 {
			continue
		}
		requireLC := set%3 == 0
		e, err := New(ts, Options{RequireLC: requireLC})
		if err != nil {
			t.Fatal(err)
		}
		full, err := New(ts, Options{RequireLC: requireLC, DisableMemo: true})
		if err != nil {
			t.Fatal(err)
		}
		h := ts.NumHC()
		parent := randomGenome(r, ts)
		// A chain of derivations: each child becomes the next parent, so
		// cached states several deltas deep are exercised too.
		for step := 0; step < 60; step++ {
			lo := r.Intn(h)
			hi := lo + r.Intn(h-lo)
			child := append([]float64(nil), parent...)
			switch r.Intn(5) {
			case 0:
				// Empty range: unmodified copy.
				lo, hi = h, -1
			case 1:
				// Make one gene in range infeasible.
				child[lo] = -1
			case 2:
				// Re-sample only part of the declared range (the range
				// may legally over-approximate the real change).
				child[lo] = randomGenome(r, ts)[lo]
			default:
				for i := lo; i <= hi; i++ {
					child[i] = randomGenome(r, ts)[i]
				}
			}
			batch := []ga.Derived{{Genome: child, Parent: parent, Lo: lo, Hi: hi}}
			out := make([]float64, 1)
			e.FitnessBatch(batch, out, 1)
			want := full.Fitness(child)
			if out[0] != want {
				t.Fatalf("set %d step %d [%d,%d]: delta = %v, full = %v\nparent %v\nchild  %v",
					set, step, lo, hi, out[0], want, parent, child)
			}
			if lo <= hi { // keep infeasible parents too — they must chain correctly
				parent = child
			}
		}
	}
}

// TestCopyHitsParentFitness: an unmodified copy (Lo > Hi) of a genome
// scored in the previous batch must be served from the parent's cached
// fitness — identical value, counted as a hit — and must itself be
// usable as a parent for later deltas.
func TestCopyHitsParentFitness(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	ts := randomSet(t, r, false)
	e, err := New(ts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := randomGenome(r, ts)
	out := make([]float64, 1)
	e.FitnessBatch([]ga.Derived{{Genome: g}}, out, 1)
	want := out[0]
	copyG := append([]float64(nil), g...)
	e.FitnessBatch([]ga.Derived{{Genome: copyG, Parent: g, Lo: ts.NumHC(), Hi: -1}}, out, 1)
	if out[0] != want {
		t.Errorf("unmodified copy scored %v, want parent's %v", out[0], want)
	}
	hits, fulls, _ := e.BatchStats()
	if hits != 1 || fulls != 1 {
		t.Errorf("stats = (hits %d, fulls %d), want (1, 1)", hits, fulls)
	}
	// The copy's cached state must serve a delta in the next batch.
	child := append([]float64(nil), copyG...)
	child[0] = randomGenome(r, ts)[0]
	e.FitnessBatch([]ga.Derived{{Genome: child, Parent: copyG, Lo: 0, Hi: 0}}, out, 1)
	ref, err := New(ts, Options{DisableMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	if want := ref.Fitness(child); out[0] != want {
		t.Errorf("delta from copied state = %v, want %v", out[0], want)
	}
	if _, _, deltas := e.BatchStats(); deltas != 1 {
		t.Errorf("deltas = %d, want 1", deltas)
	}
}

// TestWorkerInvariance: batch scoring must be bit-identical for any
// worker count, memo on or off.
func TestWorkerInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	ts := randomSet(t, r, true)
	if ts.NumHC() == 0 {
		t.Skip("degenerate draw")
	}
	batch := make([]ga.Derived, 64)
	for i := range batch {
		batch[i] = ga.Derived{Genome: randomGenome(r, ts)}
	}
	for _, disable := range []bool{false, true} {
		var ref []float64
		for _, workers := range []int{1, 4, 16} {
			e, err := New(ts, Options{DisableMemo: disable})
			if err != nil {
				t.Fatal(err)
			}
			out := make([]float64, len(batch))
			e.FitnessBatch(batch, out, workers)
			if ref == nil {
				ref = out
				continue
			}
			for i := range out {
				if out[i] != ref[i] {
					t.Errorf("memo=%v workers=%d: out[%d] = %v, want %v",
						!disable, workers, i, out[i], ref[i])
				}
			}
		}
	}
}

// TestNewRejectsNoHC: a set without HC tasks has nothing to optimise.
func TestNewRejectsNoHC(t *testing.T) {
	ts, err := mc.NewTaskSet([]mc.Task{
		{ID: 1, Crit: mc.LC, CLO: 1, CHI: 1, Period: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(ts, Options{}); err == nil {
		t.Error("New must reject a set without HC tasks")
	}
}

// TestZeroSigmaTasks: σ = 0 tasks (NMax = +Inf, budget pinned at ACET)
// must round-trip through the engine like the reference path.
func TestZeroSigmaTasks(t *testing.T) {
	ts, err := mc.NewTaskSet([]mc.Task{
		{ID: 1, Crit: mc.HC, CLO: 4, CHI: 8, Period: 20, Profile: mc.Profile{ACET: 4, Sigma: 0}},
		{ID: 2, Crit: mc.HC, CLO: 5, CHI: 10, Period: 40, Profile: mc.Profile{ACET: 5, Sigma: 0.5}},
		{ID: 3, Crit: mc.LC, CLO: 2, CHI: 2, Period: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	ref := refFitness(ts, true)
	e, err := New(ts, Options{RequireLC: true})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		g := []float64{r.Float64() * 50, r.Float64() * 10}
		want := ref(g)
		if got := e.Fitness(g); got != want {
			t.Fatalf("trial %d: Fitness = %v, want %v (genome %v)", trial, got, want, g)
		}
	}
}

// TestMemoCapBitIdentical: an evaluator whose generation cache is capped
// far below the batch size must evict (the obs counter moves) yet score
// every genome bit-identically to the uncached reference — eviction only
// forfeits reuse, never changes results.
func TestMemoCapBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	ts := randomSet(t, r, true)
	for ts.NumHC() == 0 {
		ts = randomSet(t, r, true)
	}
	capped, err := New(ts, Options{MemoCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	full, err := New(ts, Options{DisableMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	before := obsMemoEvicted.Value()
	const batchSize = 16
	parents := make([][]float64, batchSize)
	for b := 0; b < 10; b++ {
		batch := make([]ga.Derived, batchSize)
		for i := range batch {
			child := randomGenome(r, ts)
			d := ga.Derived{Genome: child, Lo: 0, Hi: len(child) - 1}
			if parents[i] != nil {
				// Derive from last batch's genome at the same slot; the
				// declared range legally over-approximates the change.
				d.Parent = parents[i]
			}
			batch[i] = d
			parents[i] = child
		}
		out := make([]float64, batchSize)
		capped.FitnessBatch(batch, out, 1)
		for i, d := range batch {
			if want := full.Fitness(d.Genome); out[i] != want {
				t.Fatalf("batch %d genome %d: capped = %v, want %v", b, i, out[i], want)
			}
		}
	}
	if after := obsMemoEvicted.Value(); after == before {
		t.Errorf("MemoCap 2 over %d-genome batches evicted nothing", batchSize)
	}
}

// TestMemoCapUnderCapNoEviction: the default cap sits far above paper
// batch sizes, so a normal GA-sized workload must never evict.
func TestMemoCapUnderCapNoEviction(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	ts := randomSet(t, r, false)
	e, err := New(ts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := obsMemoEvicted.Value()
	for b := 0; b < 20; b++ {
		batch := make([]ga.Derived, 60) // the paper's population size
		for i := range batch {
			batch[i] = ga.Derived{Genome: randomGenome(r, ts)}
		}
		out := make([]float64, len(batch))
		e.FitnessBatch(batch, out, 1)
	}
	if after := obsMemoEvicted.Value(); after != before {
		t.Errorf("default cap evicted %d states on a population-sized workload", after-before)
	}
}
