package objective

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"chebymc/internal/core"
	"chebymc/internal/edfvd"
	"chebymc/internal/mc"
	"chebymc/internal/stats"
)

// refFitnessBound is refFitness generalised to an arbitrary bound — the
// core.ApplyBound reference path the engine's bound threading is pinned
// against.
func refFitnessBound(ts *mc.TaskSet, requireLC bool, b stats.Bound) func([]float64) float64 {
	return func(g []float64) float64 {
		a, err := core.ApplyBound(ts, g, b)
		if err != nil {
			return math.Inf(-1)
		}
		if requireLC && !edfvd.Schedulable(a.TaskSet).Schedulable {
			return math.Inf(-1)
		}
		return a.Objective
	}
}

// testBounds are the bound engines the equivalence tests sweep.
func testBounds() []stats.Bound {
	return []stats.Bound{
		stats.Cantelli{},
		stats.TwoSidedChebyshev{},
		stats.VysochanskijPetunin{},
		stats.HigherMomentCantelli{K: 4, Moment: 3},
	}
}

// TestFitnessBoundMatchesApplyPath: under every bound the engine's full
// evaluation must equal the core.ApplyBound reference to the last bit.
func TestFitnessBoundMatchesApplyPath(t *testing.T) {
	for _, b := range testBounds() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			r := rand.New(rand.NewSource(23))
			for set := 0; set < 20; set++ {
				ts := randomSet(t, r, set%2 == 0)
				if ts.NumHC() == 0 {
					continue
				}
				ref := refFitnessBound(ts, false, b)
				e, err := New(ts, Options{Bound: b})
				if err != nil {
					t.Fatal(err)
				}
				for trial := 0; trial < 20; trial++ {
					g := randomGenome(r, ts)
					got, want := e.Fitness(g), ref(g)
					if math.Float64bits(got) != math.Float64bits(want) {
						t.Fatalf("set %d trial %d: Fitness = %g, reference = %g", set, trial, got, want)
					}
				}
			}
		})
	}
}

// TestNilBoundIsCantelli: the nil default and an explicit Cantelli{} are
// the same engine — same scores, same inlined hot path.
func TestNilBoundIsCantelli(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	ts := randomSet(t, r, false)
	eNil, err := New(ts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	eCan, err := New(ts, Options{Bound: stats.Cantelli{}})
	if err != nil {
		t.Fatal(err)
	}
	if !eNil.cantelli || !eCan.cantelli {
		t.Fatalf("cantelli fast path = (%v, %v), want both true", eNil.cantelli, eCan.cantelli)
	}
	for trial := 0; trial < 25; trial++ {
		g := randomGenome(r, ts)
		a, b := eNil.Fitness(g), eCan.Fitness(g)
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("trial %d: nil-bound %g != Cantelli %g", trial, a, b)
		}
	}
}

// TestBoundSeparation: evaluators built over different bounds must not
// share cached state — each carries its own generation cache, and only
// the Cantelli default takes the inlined fast path.
func TestBoundSeparation(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	ts := randomSet(t, r, false)
	for _, b := range testBounds() {
		e, err := New(ts, Options{Bound: b})
		if err != nil {
			t.Fatal(err)
		}
		if want := b.Name() == stats.DefaultBoundName; e.cantelli != want {
			t.Errorf("%s: cantelli fast path = %v, want %v", b.Name(), e.cantelli, want)
		}
	}
}

// TestFitnessAllocationFree asserts the hot path stays at zero heap
// allocations per call after the bound-interface refactor, for the
// default engine and a non-default bound alike (the bench gate watches
// the same property over time; this pins it in-tree).
func TestFitnessAllocationFree(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	ts := randomSet(t, r, false)
	for _, opts := range []Options{{}, {Bound: stats.VysochanskijPetunin{}}} {
		opts := opts
		name := "default"
		if opts.Bound != nil {
			name = opts.Bound.Name()
		}
		t.Run(name, func(t *testing.T) {
			e, err := New(ts, opts)
			if err != nil {
				t.Fatal(err)
			}
			g := randomGenome(r, ts)
			e.Fitness(g) // warm the scratch pool
			if allocs := testing.AllocsPerRun(200, func() { e.Fitness(g) }); allocs != 0 {
				t.Fatalf("Fitness allocates %g times per call, want 0", allocs)
			}
		})
	}
}

// TestGABoundSearchDiffers is a smoke check that a non-default bound
// actually changes what the optimiser sees: for a genome with moderate n
// values the VP objective must exceed Cantelli's (tighter bound ⇒ lower
// P^MS ⇒ higher Eq. 13 value).
func TestGABoundSearchDiffers(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	for set := 0; set < 10; set++ {
		ts := randomSet(t, r, false)
		if ts.NumHC() == 0 {
			continue
		}
		eCan, err := New(ts, Options{})
		if err != nil {
			t.Fatal(err)
		}
		eVP, err := New(ts, Options{Bound: stats.VysochanskijPetunin{}})
		if err != nil {
			t.Fatal(err)
		}
		g := make([]float64, ts.NumHC())
		hcs := ts.ByCrit(mc.HC)
		for i, task := range hcs {
			g[i] = math.Min(2, core.NMax(task))
		}
		can, vp := eCan.Fitness(g), eVP.Fitness(g)
		if math.IsInf(can, -1) || math.IsInf(vp, -1) {
			continue
		}
		if vp < can {
			t.Fatalf("set %d: VP objective %g below Cantelli %g for %s", set, vp, can, fmt.Sprint(g))
		}
	}
}
