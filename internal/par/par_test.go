package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapPreservesOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16, 100} {
		got, err := Map(workers, 50, func(i int) (int, error) {
			if i%7 == 0 { // make completion order scramble
				time.Sleep(time.Millisecond)
			}
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 50 {
			t.Fatalf("workers=%d: %d results, want 50", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	errLow := errors.New("low")
	for _, workers := range []int{1, 2, 8} {
		_, err := Map(workers, 40, func(i int) (int, error) {
			switch i {
			case 3:
				// Delay so higher-index errors land first under
				// parallel scheduling; the reported error must still
				// be this one.
				time.Sleep(2 * time.Millisecond)
				return 0, errLow
			case 10, 20, 30:
				return 0, fmt.Errorf("high %d", i)
			}
			return i, nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("workers=%d: got %v, want the index-3 error", workers, err)
		}
	}
}

func TestMapStopsDispatchAfterError(t *testing.T) {
	var calls atomic.Int64
	boom := errors.New("boom")
	_, err := Map(4, 10_000, func(i int) (int, error) {
		calls.Add(1)
		if i == 0 {
			return 0, boom
		}
		time.Sleep(100 * time.Microsecond)
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	if n := calls.Load(); n > 1000 {
		t.Errorf("dispatch kept going after the error: %d calls", n)
	}
}

func TestMapSerialFallbackShortCircuits(t *testing.T) {
	var calls int
	boom := errors.New("boom")
	_, err := Map(1, 100, func(i int) (int, error) {
		calls++
		if i == 4 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	if calls != 5 {
		t.Errorf("serial fallback made %d calls, want 5", calls)
	}
}

func TestMapEdgeCases(t *testing.T) {
	if _, err := Map(4, -1, func(int) (int, error) { return 0, nil }); err == nil {
		t.Error("negative n must error")
	}
	got, err := Map(4, 0, func(int) (int, error) { return 0, nil })
	if err != nil || len(got) != 0 {
		t.Errorf("n=0: got (%v, %v), want empty success", got, err)
	}
	// More workers than items must not deadlock or skip items.
	got, err = Map(64, 3, func(i int) (int, error) { return i + 1, nil })
	if err != nil || len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("workers>n: got (%v, %v)", got, err)
	}
}
