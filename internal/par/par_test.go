package par

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapCtxPreservesOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16, 100} {
		got, err := MapCtx(context.Background(), workers, 50, func(i int) (int, error) {
			if i%7 == 0 { // make completion order scramble
				time.Sleep(time.Millisecond)
			}
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 50 {
			t.Fatalf("workers=%d: %d results, want 50", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapCtxReturnsLowestIndexError(t *testing.T) {
	errLow := errors.New("low")
	for _, workers := range []int{1, 2, 8} {
		_, err := MapCtx(context.Background(), workers, 40, func(i int) (int, error) {
			switch i {
			case 3:
				// Delay so higher-index errors land first under
				// parallel scheduling; the reported error must still
				// be this one.
				time.Sleep(2 * time.Millisecond)
				return 0, errLow
			case 10, 20, 30:
				return 0, fmt.Errorf("high %d", i)
			}
			return i, nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("workers=%d: got %v, want the index-3 error", workers, err)
		}
	}
}

func TestMapCtxStopsDispatchAfterError(t *testing.T) {
	var calls atomic.Int64
	boom := errors.New("boom")
	_, err := MapCtx(context.Background(), 4, 10_000, func(i int) (int, error) {
		calls.Add(1)
		if i == 0 {
			return 0, boom
		}
		time.Sleep(100 * time.Microsecond)
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	if n := calls.Load(); n > 1000 {
		t.Errorf("dispatch kept going after the error: %d calls", n)
	}
}

func TestMapCtxSerialFallbackShortCircuits(t *testing.T) {
	var calls int
	boom := errors.New("boom")
	_, err := MapCtx(context.Background(), 1, 100, func(i int) (int, error) {
		calls++
		if i == 4 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	if calls != 5 {
		t.Errorf("serial fallback made %d calls, want 5", calls)
	}
}

func TestMapCtxEdgeCases(t *testing.T) {
	if _, err := MapCtx(context.Background(), 4, -1, func(int) (int, error) { return 0, nil }); err == nil {
		t.Error("negative n must error")
	}
	got, err := MapCtx(context.Background(), 4, 0, func(int) (int, error) { return 0, nil })
	if err != nil || len(got) != 0 {
		t.Errorf("n=0: got (%v, %v), want empty success", got, err)
	}
	// More workers than items must not deadlock or skip items.
	got, err = MapCtx(context.Background(), 64, 3, func(i int) (int, error) { return i + 1, nil })
	if err != nil || len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("workers>n: got (%v, %v)", got, err)
	}
}

func TestMapCtxCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var calls atomic.Int64
		out, err := MapCtx(ctx, workers, 1000, func(i int) (int, error) {
			if calls.Add(1) == int64(workers) {
				cancel() // cancel while the first wave is in flight
			}
			time.Sleep(time.Millisecond)
			return i + 1, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got %v, want a context.Canceled wrap", workers, err)
		}
		if out == nil {
			t.Fatalf("workers=%d: cancellation must return the partial slice", workers)
		}
		// In-flight items drain, but no new wave may start: at most one
		// extra item per worker can slip in between its cancel check and
		// the flag landing.
		if n := calls.Load(); n > int64(2*workers) {
			t.Errorf("workers=%d: dispatch continued after cancel: %d calls", workers, n)
		}
	}
}

func TestMapCtxCancelledUpFront(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int64
	_, err := MapCtx(ctx, 4, 100, func(i int) (int, error) {
		calls.Add(1)
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if calls.Load() != 0 {
		t.Errorf("a pre-cancelled context still dispatched %d items", calls.Load())
	}
}

func TestMapCtxPartialResultsRecorded(t *testing.T) {
	// Serial path: items computed before the cancel stay in the slice.
	ctx, cancel := context.WithCancel(context.Background())
	out, err := MapCtx(ctx, 1, 10, func(i int) (int, error) {
		if i == 4 {
			cancel()
		}
		return i + 1, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	for i := 0; i <= 4; i++ {
		if out[i] != i+1 {
			t.Errorf("out[%d] = %d, want %d (completed before cancel)", i, out[i], i+1)
		}
	}
	for i := 5; i < 10; i++ {
		if out[i] != 0 {
			t.Errorf("out[%d] = %d, want zero (never ran)", i, out[i])
		}
	}
}

func TestMapCtxLateCancelIsSuccess(t *testing.T) {
	// A cancel arriving after every item completed must not turn a full
	// result set into an error.
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		out, err := MapCtx(ctx, workers, 8, func(i int) (int, error) { return i, nil })
		cancel()
		if err != nil || len(out) != 8 {
			t.Fatalf("workers=%d: got (%v, %v), want full success", workers, out, err)
		}
	}
}
