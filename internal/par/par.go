// Package par is a minimal bounded worker pool for the repository's
// embarrassingly-parallel loops: GA population evaluation and the
// 1000-task-set experiment sweeps. Its primitive, MapCtx, mirrors a
// plain `for i := 0; i < n; i++` loop — results come back in input
// order and the error reported is the one the serial loop would have
// hit first — so callers can switch between serial and parallel
// execution without any observable difference beyond wall-clock.
// Cancelling the context stops the loop between items, which keeps
// long sweeps interruptible without abandoning in-flight work.
package par

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"chebymc/internal/obs"
)

// Pool telemetry. The per-batch counters are always live (a handful of
// atomic ops per MapCtx call, never per item); busy-time measurement
// reads the clock and is therefore gated on obs.Enabled.
var (
	obsBatches = obs.Default.Counter("par_batches_total",
		"MapCtx invocations")
	obsItems = obs.Default.Counter("par_items_total",
		"items dispatched across all MapCtx invocations")
	obsInflight = obs.Default.Gauge("par_inflight_batches",
		"MapCtx invocations currently executing (queue depth)")
	obsBusyNanos = obs.Default.Counter("par_worker_busy_nanoseconds_total",
		"cumulative wall time worker goroutines spent executing MapCtx batches (only measured while obs is enabled)")
)

// MapCtx runs fn(0..n-1) on at most workers goroutines and returns the
// results in input order. workers ≤ 1 runs fn inline on the caller's
// goroutine — the exact-serial fallback (still cancellable between
// items).
//
// On an fn error MapCtx stops dispatching new indices, waits for
// in-flight calls, and returns (nil, err) with the error of the lowest
// failed index — the same error a serial loop would return, for every
// worker count. fn must be safe for concurrent invocation when
// workers > 1.
//
// When ctx is cancelled mid-sweep, MapCtx stops dispatching, drains
// in-flight calls, and returns the partially-filled results slice
// together with an error wrapping ctx.Err(). Indices that never ran
// hold zero values; callers that need completeness must treat any
// non-nil error as "results are partial".
func MapCtx[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("par: negative item count %d", n)
	}
	if n == 0 {
		return []T{}, nil
	}
	obsBatches.Inc()
	obsItems.Add(uint64(n))
	obsInflight.Add(1)
	defer obsInflight.Add(-1)
	out := make([]T, n)
	if workers <= 1 || n == 1 {
		span := obs.StartSpan()
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				span.AddNanosInto(obsBusyNanos)
				return out, fmt.Errorf("par: cancelled after %d of %d items: %w", i, n, err)
			}
			v, err := fn(i)
			if err != nil {
				span.AddNanosInto(obsBusyNanos)
				return nil, err
			}
			out[i] = v
		}
		span.AddNanosInto(obsBusyNanos)
		return out, nil
	}
	if workers > n {
		workers = n
	}

	var (
		next      atomic.Int64 // next index to dispatch
		failed    atomic.Bool  // stops dispatch after the first error
		completed atomic.Int64 // successfully computed items
		errs      = make([]error, n)
		wg        sync.WaitGroup
	)
	next.Store(-1)
	done := ctx.Done()
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			span := obs.StartSpan()
			defer span.AddNanosInto(obsBusyNanos)
			for {
				i := int(next.Add(1))
				if i >= n || failed.Load() {
					return
				}
				select {
				case <-done:
					return
				default:
				}
				v, err := fn(i)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				out[i] = v
				completed.Add(1)
			}
		}()
	}
	wg.Wait()

	// Indices are dispatched in order, so when index k fails every index
	// below k was at least started and has recorded its own outcome by
	// now — the lowest recorded error is therefore the serial loop's
	// error regardless of scheduling.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil && int(completed.Load()) < n {
		return out, fmt.Errorf("par: cancelled after %d of %d items: %w", completed.Load(), n, err)
	}
	return out, nil
}
