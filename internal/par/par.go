// Package par is a minimal bounded worker pool for the repository's
// embarrassingly-parallel loops: GA population evaluation and the
// 1000-task-set experiment sweeps. Its one primitive, Map, mirrors a
// plain `for i := 0; i < n; i++` loop — results come back in input
// order and the error reported is the one the serial loop would have
// hit first — so callers can switch between serial and parallel
// execution without any observable difference beyond wall-clock.
package par

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Map runs fn(0..n-1) on at most workers goroutines and returns the
// results in input order. workers ≤ 1 runs fn inline on the caller's
// goroutine with no synchronisation — the exact-serial fallback.
//
// On error Map stops dispatching new indices, waits for in-flight calls,
// and returns the error of the lowest failed index — the same error a
// serial loop would return, for every worker count. fn must be safe for
// concurrent invocation when workers > 1.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("par: negative item count %d", n)
	}
	if n == 0 {
		return []T{}, nil
	}
	out := make([]T, n)
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	if workers > n {
		workers = n
	}

	var (
		next   atomic.Int64 // next index to dispatch
		failed atomic.Bool  // stops dispatch after the first error
		errs   = make([]error, n)
		wg     sync.WaitGroup
	)
	next.Store(-1)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n || failed.Load() {
					return
				}
				v, err := fn(i)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()

	// Indices are dispatched in order, so when index k fails every index
	// below k was at least started and has recorded its own outcome by
	// now — the lowest recorded error is therefore the serial loop's
	// error regardless of scheduling.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
