package amc

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"chebymc/internal/mc"
	"chebymc/internal/policy"
	"chebymc/internal/taskgen"
)

func set(t *testing.T, tasks ...mc.Task) *mc.TaskSet {
	t.Helper()
	ts, err := mc.NewTaskSet(tasks)
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

func TestClassicRTAExample(t *testing.T) {
	// Single-criticality sanity: the classic three-task RM example.
	// T=(7,12,20), C=(3,3,5): R1=3, R2=6, R3=20 — all meet implicit
	// deadlines (R3 exactly at 20).
	ts := set(t,
		mc.Task{ID: 1, Crit: mc.HC, CLO: 3, CHI: 3, Period: 7},
		mc.Task{ID: 2, Crit: mc.HC, CLO: 3, CHI: 3, Period: 12},
		mc.Task{ID: 3, Crit: mc.HC, CLO: 5, CHI: 5, Period: 20},
	)
	a := Schedulable(ts)
	if !a.Schedulable {
		t.Fatalf("classic set must pass: %v", a)
	}
	if a.RLO[1] != 3 {
		t.Errorf("R1 = %g, want 3", a.RLO[1])
	}
	if a.RLO[2] != 6 {
		t.Errorf("R2 = %g, want 6", a.RLO[2])
	}
	if a.RLO[3] != 20 {
		t.Errorf("R3 = %g, want 20", a.RLO[3])
	}
}

func TestLOOverloadFails(t *testing.T) {
	ts := set(t,
		mc.Task{ID: 1, Crit: mc.HC, CLO: 6, CHI: 6, Period: 10},
		mc.Task{ID: 2, Crit: mc.LC, CLO: 6, CHI: 6, Period: 10},
	)
	a := Schedulable(ts)
	if a.Schedulable {
		t.Fatal("overloaded LO mode accepted")
	}
	if a.FailedTask != 2 {
		t.Errorf("failed task = %d, want the lower-priority 2", a.FailedTask)
	}
	if !math.IsInf(a.RLO[2], 1) {
		t.Errorf("diverged response must be +Inf, got %g", a.RLO[2])
	}
	if !strings.Contains(a.String(), "unschedulable") {
		t.Error("report wrong")
	}
}

func TestTransitionBudgetMatters(t *testing.T) {
	// A set that fits in LO mode and in steady HI mode but fails the
	// AMC-rtb transition: the HC task pays LC interference accumulated
	// before the switch plus its full C^HI after.
	base := []mc.Task{
		{ID: 1, Crit: mc.LC, CLO: 4, CHI: 4, Period: 10},
		{ID: 2, Crit: mc.HC, CLO: 4, CHI: 11, Period: 20},
	}
	ts := set(t, base...)
	a := Schedulable(ts)
	// LO: R2 = 4 + ⌈8/10⌉·4 = 8 ≤ 20 ✓;
	// transition: R* = 11 + ⌈8/10⌉·4 = 15 ≤ 20 ✓.
	if !a.Schedulable {
		t.Fatalf("should pass: %+v", a)
	}
	if a.RLO[2] != 8 {
		t.Errorf("R_LO(2) = %g, want 8", a.RLO[2])
	}
	if a.RStar[2] != 15 {
		t.Errorf("R*_2 = %g, want 15", a.RStar[2])
	}
	// Raise C^HI so the transition fails while steady HI alone would
	// pass (17 ≤ 20): R* = 17 + ⌈8/10⌉·4 = 21 > 20.
	base[1].CHI = 17
	a = Schedulable(set(t, base...))
	if a.Schedulable {
		t.Fatalf("transition overload accepted: %+v", a)
	}
}

func TestHigherPriorityHCInterferenceAtCHI(t *testing.T) {
	ts := set(t,
		mc.Task{ID: 1, Crit: mc.HC, CLO: 2, CHI: 6, Period: 10},
		mc.Task{ID: 2, Crit: mc.HC, CLO: 3, CHI: 8, Period: 30},
	)
	a := Schedulable(ts)
	if !a.Schedulable {
		t.Fatalf("should pass: %+v", a)
	}
	// R*_2 = 8 + ⌈R/10⌉·6 → 8 → 14 → 20 → fixed point 20 ≤ 30.
	if a.RStar[2] != 20 {
		t.Errorf("R*_2 = %g, want 20", a.RStar[2])
	}
}

// Property: the Chebyshev scheme (smaller C^LO) never hurts AMC
// acceptance — shrinking LO budgets only reduces interference terms.
func TestSchemeMonotoneForAMC(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ts, err := taskgen.Mixed(r, taskgen.Config{}, 0.9)
		if err != nil {
			return false
		}
		if Schedulable(ts).Schedulable {
			// Pessimistic budgets pass: the scheme's smaller budgets
			// must too.
			a, err := policy.ChebyshevUniform{N: 3}.Assign(ts, nil)
			if err != nil {
				return false
			}
			return Schedulable(a.TaskSet).Schedulable
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// The scheme improves AMC acceptance at high load, mirroring Fig. 6's
// EDF-VD result on the second scheduler.
func TestSchemeImprovesAMCAcceptance(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	const sets = 80
	baseOK, schemeOK := 0, 0
	for i := 0; i < sets; i++ {
		ts, err := taskgen.Mixed(r, taskgen.Config{}, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		base, err := policy.LambdaRange{Lo: 0.25, Hi: 1}.Assign(ts, r)
		if err != nil {
			t.Fatal(err)
		}
		if Schedulable(base.TaskSet).Schedulable {
			baseOK++
		}
		ours, err := policy.ChebyshevUniform{N: 0}.Assign(ts, nil)
		if err != nil {
			t.Fatal(err)
		}
		if Schedulable(ours.TaskSet).Schedulable {
			schemeOK++
		}
	}
	if schemeOK < baseOK {
		t.Errorf("scheme acceptance %d below baseline %d", schemeOK, baseOK)
	}
	if schemeOK == 0 {
		t.Error("scheme accepted nothing at U=1.0")
	}
}

func TestPriorityOrderDeadlineMonotonic(t *testing.T) {
	ts := set(t,
		mc.Task{ID: 9, Crit: mc.LC, CLO: 1, CHI: 1, Period: 50},
		mc.Task{ID: 3, Crit: mc.HC, CLO: 1, CHI: 2, Period: 10},
		mc.Task{ID: 7, Crit: mc.HC, CLO: 1, CHI: 2, Period: 10},
	)
	ordered := byPriority(ts)
	if ordered[0].ID != 3 || ordered[1].ID != 7 || ordered[2].ID != 9 {
		t.Errorf("priority order wrong: %v, %v, %v", ordered[0].ID, ordered[1].ID, ordered[2].ID)
	}
}
