// Package amc implements Adaptive Mixed Criticality response-time
// analysis (AMC-rtb, Baruah/Burns/Davis) for fixed-priority preemptive
// scheduling of dual-criticality task sets. The paper's Section V-D notes
// that the proposed WCET^opt selection "can be applied to any scheduling
// algorithm"; this package substantiates that claim with a second,
// independent schedulability analysis the Chebyshev budgets plug into
// (the probabilistic FPP analysis of [18] targets the same setting).
//
// Priorities are deadline monotonic (= rate monotonic here, deadlines
// being implicit), ties broken by task ID. Three checks:
//
//   - LO mode: classic RTA with C^LO budgets over all tasks.
//
//   - HI mode (steady): RTA with C^HI budgets over HC tasks only.
//
//   - Transition (AMC-rtb): HC task i must meet its deadline across the
//     switch, with HC interference at C^HI and LC interference capped by
//     the releases before i's LO-mode response time:
//
//     R*_i = C^HI_i + Σ_{j∈hpH(i)} ⌈R*_i/T_j⌉·C^HI_j
//
//   - Σ_{k∈hpL(i)} ⌈R^LO_i/T_k⌉·C^LO_k
package amc

import (
	"fmt"
	"math"
	"sort"

	"chebymc/internal/mc"
)

// Analysis is the outcome of the AMC-rtb test.
type Analysis struct {
	// Schedulable reports whether all three checks passed.
	Schedulable bool
	// RLO maps task ID → LO-mode response time (present for every task
	// that converged; divergent entries are +Inf).
	RLO map[int]float64
	// RStar maps HC task ID → AMC-rtb transition response time.
	RStar map[int]float64
	// FailedTask identifies the first task to miss, 0 when schedulable.
	FailedTask int
}

// byPriority returns the tasks in descending priority (deadline
// monotonic: shorter period first, ties by ID).
func byPriority(ts *mc.TaskSet) []mc.Task {
	tasks := append([]mc.Task(nil), ts.Tasks...)
	sort.SliceStable(tasks, func(i, j int) bool {
		if tasks[i].Period != tasks[j].Period {
			return tasks[i].Period < tasks[j].Period
		}
		return tasks[i].ID < tasks[j].ID
	})
	return tasks
}

// rta iterates R = own + Σ ⌈R/T_j⌉·C_j to a fixed point, or +Inf when R
// exceeds the deadline bound.
func rta(own, bound float64, interferers []mc.Task, budget func(mc.Task) float64) float64 {
	r := own
	for iter := 0; iter < 10000; iter++ {
		next := own
		for _, j := range interferers {
			next += math.Ceil(r/j.Period) * budget(j)
		}
		if next == r {
			return r
		}
		if next > bound {
			return math.Inf(1)
		}
		r = next
	}
	return math.Inf(1)
}

// Schedulable runs the AMC-rtb analysis on a dual-criticality set.
func Schedulable(ts *mc.TaskSet) Analysis {
	tasks := byPriority(ts)
	a := Analysis{
		Schedulable: true,
		RLO:         make(map[int]float64, len(tasks)),
		RStar:       make(map[int]float64),
	}
	fail := func(id int) {
		if a.Schedulable {
			a.Schedulable = false
			a.FailedTask = id
		}
	}

	cLO := func(t mc.Task) float64 { return t.CLO }
	cHI := func(t mc.Task) float64 { return t.CHI }

	for i, t := range tasks {
		hp := tasks[:i]

		// LO-mode RTA over all higher-priority tasks at C^LO.
		rlo := rta(t.CLO, t.Deadline(), hp, cLO)
		a.RLO[t.ID] = rlo
		if rlo > t.Deadline() {
			fail(t.ID)
			continue
		}
		if t.Crit != mc.HC {
			continue
		}

		// Steady HI mode and AMC-rtb transition for HC tasks.
		var hpH, hpL []mc.Task
		for _, j := range hp {
			if j.Crit == mc.HC {
				hpH = append(hpH, j)
			} else {
				hpL = append(hpL, j)
			}
		}
		// LC interference frozen at the LO-mode response time.
		lcInterf := 0.0
		for _, k := range hpL {
			lcInterf += math.Ceil(rlo/k.Period) * k.CLO
		}
		rstar := rta(t.CHI+lcInterf, t.Deadline(), hpH, cHI)
		a.RStar[t.ID] = rstar
		if rstar > t.Deadline() {
			fail(t.ID)
		}
	}
	return a
}

// String renders a compact report.
func (a Analysis) String() string {
	if a.Schedulable {
		return "amc: schedulable"
	}
	return fmt.Sprintf("amc: unschedulable (task %d)", a.FailedTask)
}
