// Package texttable renders aligned plain-text tables for experiment
// output, keeping presentation out of the analysis packages.
package texttable

import (
	"fmt"
	"strings"
)

// Table accumulates rows under a fixed header. The zero value is unusable;
// construct with New.
type Table struct {
	title  string
	header []string
	rows   [][]string
}

// New returns a table with the given title and column headers.
func New(title string, header ...string) *Table {
	return &Table{title: title, header: append([]string(nil), header...)}
}

// AddRow appends a row of cells; missing cells render empty, extra cells
// are kept (the widths adapt).
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, append([]string(nil), cells...))
}

// AddRowf appends a row formatting each value with the matching verb in
// formats ("%s", "%.2f", ...). len(formats) must equal len(values).
func (t *Table) AddRowf(formats []string, values ...interface{}) error {
	if len(formats) != len(values) {
		return fmt.Errorf("texttable: %d formats for %d values", len(formats), len(values))
	}
	cells := make([]string, len(values))
	for i, v := range values {
		cells[i] = fmt.Sprintf(formats[i], v)
	}
	t.AddRow(cells...)
	return nil
}

// NumRows reports the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Title returns the table's title line.
func (t *Table) Title() string { return t.title }

// Header returns a copy of the column headers.
func (t *Table) Header() []string { return append([]string(nil), t.header...) }

// Rows returns a copy of the data rows (the cell slices are shared).
func (t *Table) Rows() [][]string { return append([][]string(nil), t.rows...) }

// String renders the table with a title line, a header, a separator and
// aligned columns.
func (t *Table) String() string {
	cols := len(t.header)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}

	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(cols-1)))
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header first), quoting
// cells that contain commas or quotes.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(r []string) {
		for i, c := range r {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
