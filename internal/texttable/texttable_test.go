package texttable

import (
	"strings"
	"testing"
)

func TestStringAlignment(t *testing.T) {
	tb := New("Title", "col", "longer-col")
	tb.AddRow("a", "b")
	tb.AddRow("wideish", "c")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Title" {
		t.Errorf("first line %q, want title", lines[0])
	}
	if !strings.HasPrefix(lines[1], "col") {
		t.Errorf("header line %q", lines[1])
	}
	if !strings.Contains(lines[2], "---") {
		t.Errorf("separator line %q", lines[2])
	}
	// Data rows must align: "b" and "c" start at the same column.
	bIdx := strings.Index(lines[3], "b")
	cIdx := strings.Index(lines[4], "c")
	if bIdx != cIdx {
		t.Errorf("columns misaligned: %d vs %d\n%s", bIdx, cIdx, out)
	}
}

func TestAddRowf(t *testing.T) {
	tb := New("", "name", "value")
	if err := tb.AddRowf([]string{"%s", "%.2f"}, "pi", 3.14159); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tb.String(), "3.14") {
		t.Errorf("formatted value missing:\n%s", tb.String())
	}
	if err := tb.AddRowf([]string{"%s"}, "a", "b"); err == nil {
		t.Error("format/value length mismatch must error")
	}
	if tb.NumRows() != 1 {
		t.Errorf("NumRows = %d, want 1", tb.NumRows())
	}
}

func TestShortAndExtraRows(t *testing.T) {
	tb := New("", "a", "b", "c")
	tb.AddRow("1")                    // short
	tb.AddRow("1", "2", "3", "extra") // long
	out := tb.String()
	if !strings.Contains(out, "extra") {
		t.Errorf("extra cell lost:\n%s", out)
	}
}

func TestCSV(t *testing.T) {
	tb := New("ignored", "x", "y")
	tb.AddRow("1", "hello, world")
	tb.AddRow("2", `say "hi"`)
	csv := tb.CSV()
	lines := strings.Split(strings.TrimRight(csv, "\n"), "\n")
	if lines[0] != "x,y" {
		t.Errorf("header %q", lines[0])
	}
	if lines[1] != `1,"hello, world"` {
		t.Errorf("quoted comma row %q", lines[1])
	}
	if lines[2] != `2,"say ""hi"""` {
		t.Errorf("quoted quote row %q", lines[2])
	}
}

func TestEmptyTitleOmitted(t *testing.T) {
	tb := New("", "a")
	tb.AddRow("1")
	if strings.HasPrefix(tb.String(), "\n") {
		t.Error("empty title must not emit a blank line")
	}
}
