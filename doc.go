// Package chebymc reproduces "Improving the Timing Behaviour of
// Mixed-Criticality Systems Using Chebyshev's Theorem" (Ranjbar et al.,
// DATE 2021).
//
// The library determines the optimistic worst-case execution times
// (WCET^opt) of high-criticality tasks in a dual-criticality EDF-VD system
// from their measured execution-time statistics: C^LO = ACET + n·σ, with
// the one-sided Chebyshev (Cantelli) inequality bounding the per-job
// overrun probability by 1/(1+n²) for any distribution. A genetic
// algorithm picks per-task n_i maximising (1 − P^MS_sys) · max(U^LO_LC).
//
// Packages:
//
//   - internal/core       — the paper's contribution (Theorem 1, Eqs. 6–13)
//   - internal/mc         — the mixed-criticality task model
//   - internal/edfvd      — EDF-VD schedulability analysis (Eq. 8)
//   - internal/policy     — assignment policies incl. λ baselines and GA
//   - internal/sim        — discrete-event EDF-VD runtime simulator
//   - internal/vmcpu      — cost-model CPU (MEET substitute)
//   - internal/ipet       — structural WCET analysis (OTAWA substitute)
//   - internal/trace      — execution-time traces and diagnostics
//   - internal/stats      — statistics, Cantelli bounds, bootstrap CIs
//   - internal/dist       — execution-time distributions
//   - internal/fit        — pWCET/EVT fitting (bounds ablation)
//   - internal/dbf        — demand-bound functions, exact QPA EDF test
//   - internal/ga         — genetic algorithm substrate
//   - internal/anneal     — simulated annealing (optimizer ablation)
//   - internal/taskgen    — synthetic dual-criticality task sets
//   - internal/experiment — one harness per paper table/figure
//
// Extensions beyond the paper:
//
//   - internal/mlmc       — >2 criticality levels (the stated future work)
//   - internal/partition  — partitioned multiprocessors (per-core Eq. 8)
//   - internal/amc        — fixed-priority AMC-rtb analysis
//   - internal/energy     — DVFS speed scaling over the Eq. 8 floor
//
// The benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation; see DESIGN.md for the experiment index and
// EXPERIMENTS.md for paper-vs-measured results.
package chebymc
